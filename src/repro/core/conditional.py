"""Algorithm 3 — the conditional (pattern-growth) PLT miner.

The paper's conditional approach processes items in *decreasing* rank
order.  For item ``j``:

1. Its conditional database is exactly the vectors whose sum equals ``j``
   (the sum index makes this a dictionary lookup — this is the paper's
   "easy identification of the conditional structure" claim).
2. The support of the current pattern extended by ``j`` is the total
   frequency of that bucket.
3. Each bucket vector's prefix (last position dropped, Lemma 4.1.3a) is
   simultaneously

   * **migrated** back into the enclosing structure, so that lower-ranked
     items later receive the counts of transactions whose maximal item was
     ``j`` — the paper's ``Update PLT with V'`` step, performed
     *unconditionally* (even when ``j`` itself is infrequent), and
   * **added to the conditional database** ``CD_j``.

4. If the extension is frequent, a *conditional PLT* is built from
   ``CD_j`` by removing locally-infrequent items from every vector
   (position merging, Lemma 4.1.3b / :func:`~repro.core.position.restrict_to_ranks`)
   and the procedure recurses.

The recursion depth is bounded by the longest frequent itemset, so we use
plain recursion with a raised limit guard.

Anti-monotone pruning is fully exploited: a conditional PLT only ever
contains items that are frequent *together with* the current suffix.
"""

from __future__ import annotations

import sys
from collections.abc import Callable, Iterator

from repro.core.plt import PLT
from repro.core.position import PositionVector, restrict_to_ranks
from repro.errors import InvalidSupportError

__all__ = [
    "mine_conditional",
    "conditional_database",
    "build_conditional_buckets",
    "rank_supports_of_vectors",
]

Buckets = dict[int, dict[PositionVector, int]]
Emit = Callable[[tuple[int, ...], int], None]


def rank_supports_of_vectors(vectors: dict[PositionVector, int]) -> dict[int, int]:
    """Support of every rank appearing in an aggregated vector table.

    Decodes each vector's cumulative sums once; the frequency of the vector
    contributes to every rank on its path (Lemma 4.1.1).
    """
    supports: dict[int, int] = {}
    for vec, freq in vectors.items():
        total = 0
        for p in vec:
            total += p
            supports[total] = supports.get(total, 0) + freq
    return supports


def build_conditional_buckets(
    prefixes: dict[PositionVector, int], min_support: int
) -> Buckets:
    """Build a conditional PLT (as sum-indexed buckets) from prefix vectors.

    Locally infrequent ranks are removed from every vector by projection
    (equivalent to the paper's consecutive-position merging); surviving
    vectors are re-aggregated and bucketed by sum.
    """
    supports = rank_supports_of_vectors(prefixes)
    frequent = {r for r, s in supports.items() if s >= min_support}
    if not frequent:
        return {}
    buckets: Buckets = {}
    if len(frequent) == len(supports):
        # nothing to filter: bucket the prefixes as-is
        for vec, freq in prefixes.items():
            bucket = buckets.setdefault(sum(vec), {})
            bucket[vec] = bucket.get(vec, 0) + freq
        return buckets
    for vec, freq in prefixes.items():
        kept = restrict_to_ranks(vec, frequent)
        if not kept:
            continue
        bucket = buckets.setdefault(sum(kept), {})
        bucket[kept] = bucket.get(kept, 0) + freq
    return buckets


def conditional_database(
    plt: PLT, rank: int
) -> tuple[dict[PositionVector, int], int, Buckets]:
    """Stand-alone form of the paper's ``Conditional_Construct`` for tests.

    Returns ``(CD_rank, support(rank), remaining_buckets)`` where
    ``remaining_buckets`` is the PLT's sum index *after* the bucket of
    ``rank`` was consumed and its prefixes migrated — i.e. the state of
    Figure 5(b).  Higher-ranked buckets must already have been processed
    for the support to be the true support; for the top rank this holds
    trivially.
    """
    buckets = plt.sum_index()
    for j in range(max(buckets, default=0), rank - 1, -1):
        bucket = buckets.pop(j, None)
        if bucket is None:
            if j == rank:
                return {}, 0, buckets
            continue
        cd, support = _consume_bucket(bucket, buckets)
        if j == rank:
            return cd, support, buckets
    return {}, 0, buckets


def _consume_bucket(
    bucket: dict[PositionVector, int], buckets: Buckets
) -> tuple[dict[PositionVector, int], int]:
    """Migrate a bucket's prefixes into ``buckets``; return (CD_j, support)."""
    support = 0
    cd: dict[PositionVector, int] = {}
    for vec, freq in bucket.items():
        support += freq
        prefix = vec[:-1]
        if prefix:
            parent = buckets.setdefault(sum(prefix), {})
            parent[prefix] = parent.get(prefix, 0) + freq
            cd[prefix] = cd.get(prefix, 0) + freq
    return cd, support


def _mine(
    buckets: Buckets,
    suffix: tuple[int, ...],
    min_support: int,
    emit: Emit,
    max_len: int | None,
) -> None:
    # Algorithm 3: "For j = Max down to 1".  Migration inserts buckets at
    # sums strictly below the one being consumed, so a descending counter
    # visits every bucket exactly once, including freshly created ones.
    for j in range(max(buckets, default=0), 0, -1):
        bucket = buckets.pop(j, None)
        if bucket is None:
            continue
        cd, support = _consume_bucket(bucket, buckets)
        if support < min_support:
            continue  # prefixes were still migrated, as Algorithm 3 requires
        itemset = suffix + (j,)
        emit(itemset, support)
        if cd and (max_len is None or len(itemset) < max_len):
            sub_buckets = build_conditional_buckets(cd, min_support)
            if sub_buckets:
                _mine(sub_buckets, itemset, min_support, emit, max_len)


def mine_conditional(
    plt: PLT,
    min_support: int | None = None,
    *,
    max_len: int | None = None,
    ranks: Iterator[int] | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Mine all frequent itemsets from a PLT (Algorithm 3).

    Parameters
    ----------
    plt:
        The structure built by Algorithm 1.
    min_support:
        Absolute count; defaults to the threshold the PLT was built with.
    max_len:
        Optional cap on itemset length (a standard practical extension).
    ranks:
        Restrict the *top-level* loop to these ranks (used by the parallel
        executor's task partitioning).  Prefix migration for higher ranks
        is still performed so counts stay exact.

    Returns
    -------
    list of ``(rank_tuple, support)`` where ``rank_tuple`` is sorted
    ascending.  Use the PLT's rank table to decode to item labels.
    """
    if min_support is None:
        min_support = plt.min_support
    if min_support < 1:
        raise InvalidSupportError(f"absolute min_support must be >= 1, got {min_support}")
    if max_len is not None and max_len < 1:
        raise InvalidSupportError(f"max_len must be >= 1, got {max_len}")

    results: list[tuple[tuple[int, ...], int]] = []

    def emit(itemset: tuple[int, ...], support: int) -> None:
        # suffixes are produced in decreasing rank order; store ascending
        results.append((tuple(sorted(itemset)), support))

    buckets = plt.sum_index()
    depth_needed = plt.max_length() + len(plt.rank_table) + 100
    old_limit = sys.getrecursionlimit()
    if depth_needed > old_limit:
        sys.setrecursionlimit(depth_needed)
    try:
        if ranks is None:
            _mine(buckets, (), min_support, emit, max_len)
        else:
            wanted = set(ranks)
            for j in range(max(buckets, default=0), 0, -1):
                bucket = buckets.pop(j, None)
                if bucket is None:
                    continue
                cd, support = _consume_bucket(bucket, buckets)
                if j not in wanted or support < min_support:
                    continue
                emit((j,), support)
                if cd and (max_len is None or max_len > 1):
                    sub = build_conditional_buckets(cd, min_support)
                    if sub:
                        _mine(sub, (j,), min_support, emit, max_len)
    finally:
        if depth_needed > old_limit:
            sys.setrecursionlimit(old_limit)
    return results
