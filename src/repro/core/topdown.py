"""Algorithm 2 — the top-down PLT miner.

The top-down approach materialises the frequency of **every** subset of
every transaction (Figure 4 of the paper), then filters by support.  It is
exponential in transaction length by design; the paper positions it for
very low support thresholds on short-transaction data, where the frequent
set approaches the full subset lattice anyway and anti-monotone pruning
buys nothing.

No-duplication discipline
-------------------------
A subset of transaction ``T = {x0 < ... < x_{k-1}}`` is generated exactly
once by composing the paper's two subset rules (Lemma 4.1.3) canonically:

1. *Prefix seeding* ("part A", folded into construction exactly as the
   paper suggests): for every stored vector, all of its prefixes are
   seeded.  The prefix ending at the subset's **maximal** item is the
   subset's unique ancestor.
2. *Left-shifting merges* ("part B", Algorithm 2's shift discipline):
   interior items are removed by consecutive-position merges at strictly
   **decreasing** indices.  Every work item carries a merge *cursor*
   ``limit`` — merges are only allowed at 0-based indices ``< limit``; a
   child created by merging at index ``i`` gets ``limit = i``.

Any subset has exactly one (prefix, decreasing-merge-sequence)
decomposition, so every (transaction, subset) pair contributes its
frequency exactly once.

Hot-path engine
---------------
:func:`_subset_byte_frequencies` runs the pass on **rank paths**
(cumulative-sum tuples, Lemma 4.1.1, precomputed at PLT construction)
packed into native-int ``bytes`` keys: removing item ``i`` is a
two-slice memcpy instead of the delta-space merge's three-part
concatenation with an addition, and key hashing is one pass over a flat
buffer rather than per-element integer hashing.  Three further
structural savings over the seed-era two-part formulation:

* **Fused parts** — prefix seeding threads through the same
  descending-length sweep as merge expansion (a per-length *chain* table),
  so stored vectors that share a prefix converge *before* shorter prefixes
  are sliced and each shared prefix tuple is materialised once, not once
  per ancestor.
* **Cursor grouping** — work items are aggregated ``vector -> {cursor ->
  frequency}``; a vector reached with several different cursors expands
  its children once, each child receiving the suffix-summed frequency of
  every cursor that allows it (identical aggregation semantics, far fewer
  tuple constructions and table updates).
* **Local binding** — the per-length target tables are bound to locals
  around the hot loops; no ``setdefault`` or closure calls remain on the
  per-subset path.

:func:`topdown_subset_frequencies` keeps the historical delta-vector
result shape by converting the path table once at the end.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from collections.abc import Mapping

from repro.core.plt import PLT
from repro.core.position import PositionVector, RankPath, path_to_vector
from repro.errors import InvalidSupportError, MiningInterrupted, TopDownExplosionError
from repro.perf.counters import COUNTERS as _COUNTERS

__all__ = [
    "topdown_subset_frequencies",
    "topdown_subset_path_frequencies",
    "topdown_flat_slice",
    "mine_topdown",
    "estimate_topdown_work",
    "DEFAULT_WORK_LIMIT",
    "WORK_ESTIMATE_CAP",
]

#: Default ceiling on generated subset-work items before aggregation savings.
DEFAULT_WORK_LIMIT = 20_000_000

#: Saturation value returned by :func:`estimate_topdown_work` once the true
#: bound exceeds it.  Any practical ``work_limit`` is far below this, so a
#: capped estimate always trips the guard; callers must treat the value as
#: "at least this much", never as an exact count.
WORK_ESTIMATE_CAP = 1 << 62


def estimate_topdown_work(plt: PLT) -> int:
    """Upper bound on subset generation events: sum of 2^len per vector.

    Aggregation across identical ``(vector, cursor)`` work items usually
    keeps the real cost far below this, but the bound is what protects the
    process from pathological inputs.

    Saturates at :data:`WORK_ESTIMATE_CAP`: once the running bound crosses
    the cap the function returns the cap itself rather than whatever
    partial sum the loop had reached, so the work-limit guard compares
    against a well-defined sentinel and can never under-estimate by
    reporting a partially-accumulated total as if it covered every
    partition.
    """
    total = 0
    for length, bucket in plt.partitions.items():
        total += (2**length - 1) * len(bucket)
        if total > WORK_ESTIMATE_CAP:
            return WORK_ESTIMATE_CAP
    return total


def _check_work_limit(plt: PLT, work_limit: int | None) -> None:
    if work_limit is None:
        return
    estimate = estimate_topdown_work(plt)
    if estimate > work_limit:
        raise TopDownExplosionError(
            f"top-down pass would generate up to {estimate} subset events "
            f"(work_limit={work_limit}); use the conditional miner or raise "
            f"the limit"
        )


#: Byte width of one rank in the packed-path keys of the byte engine.
_RANK_ITEMSIZE = array("I").itemsize


def _decode_path(pb: bytes) -> RankPath:
    """Unpack a packed-path key back into a rank-path tuple."""
    return tuple(array("I", pb))


def _subset_byte_frequencies(plt: PLT, governor=None) -> dict[int, dict[bytes, int]]:
    """The top-down engine on packed-``bytes`` path keys.

    Rank paths are packed into native unsigned-int ``bytes`` strings: a
    child deletion is then one slice-and-concatenate memcpy, hashing is a
    single pass over the buffer instead of per-element integer hashing,
    and merge cursors live directly in byte units so the hot loop does no
    index arithmetic at all.  The result maps ``length -> {packed path ->
    frequency}``; callers that need tuples decode with
    :func:`_decode_path` (ideally after support filtering, so only
    survivors pay the decode).
    """

    def packed():
        for path, freq in plt.iter_rank_paths():
            yield array("I", path).tobytes(), freq

    return _subset_byte_frequencies_packed(packed(), governor=governor)


def topdown_flat_slice(
    flat, start: int, end: int, *, governor=None, singletons: bool = True
) -> dict[int, dict[bytes, int]]:
    """Top-down engine over stored paths ``[start, end)`` of a FlatPLT.

    The flat ``ranks`` column uses the engine's own key encoding, so a
    seed is one ``tobytes()`` slice off shared memory — no RankPath tuple
    is ever materialised.  Returns the packed per-length table (partial
    sums; slices over the same structure merge by addition).

    Workers on the shared-memory transport pass ``singletons=False``:
    their partial length-1 sums are redundant — the driver reconstitutes
    that level exactly from :meth:`FlatPLT.rank_supports` — and dropping
    them cuts the widest level of the lattice out of every result pickle.
    """
    off, ranks, freqs = flat.path_offsets, flat.ranks, flat.freqs

    def packed():
        for p in range(start, end):
            yield ranks[off[p] : off[p + 1]].tobytes(), freqs[p]

    counts = _subset_byte_frequencies_packed(packed(), governor=governor)
    if not singletons:
        counts.pop(1, None)
    return counts


def _subset_byte_frequencies_packed(
    packed_pairs, governor=None
) -> dict[int, dict[bytes, int]]:
    """Engine core, seeded from an iterable of ``(packed path, freq)``.

    Packed paths must be distinct (both sources — the PLT's interned
    index and a FlatPLT path slice — guarantee it).
    """
    counters = _COUNTERS
    counts: dict[int, dict[bytes, int]] = defaultdict(dict)
    if governor is not None:
        # expose the live table so mine_topdown can salvage the lengths
        # already finalized if a budget trips mid-sweep (private key,
        # popped by the driver before progress reaches any caller)
        governor.start()
        governor.progress["_topdown_counts"] = counts
    # merge work: length -> {path -> {cursor -> frequency}}; cursors are
    # byte offsets — a child cut at offset o inherits the summed
    # frequency of every cursor > o and carries cursor o itself
    merge_work: dict[int, dict[bytes, dict[int, int]]] = defaultdict(dict)
    # prefix chains: length -> {path -> frequency}; entries are already
    # counted and owe (a) their full merge fan-out, (b) their next prefix
    chain_work: dict[int, dict[bytes, int]] = defaultdict(dict)

    isz = _RANK_ITEMSIZE
    top = 0
    for pb, freq in packed_pairs:
        length = len(pb) // isz
        counts[length][pb] = freq  # packed paths are distinct
        if length >= 2:
            chain = chain_work[length]
            chain[pb] = chain.get(pb, 0) + freq
        if length > top:
            top = length

    tick = governor.tick if governor is not None else None
    length = top
    while length >= 2:
        if governor is not None:
            # counts[L] for L >= the in-flight length are final: processing
            # this length only writes into counts[length - 1]
            governor.progress["sweep_length"] = length
            governor.tick()
        child_len = length - 1
        # byte offset of the last item — also the full-freedom cursor
        # (every deletion offset is strictly below it)
        cut = isz * child_len
        chain = chain_work.pop(length, None)
        if chain:
            if tick is not None:
                tick(len(chain))
            if counters.enabled:
                counters.add("topdown_chain_prefixes", len(chain))
            mw = merge_work[length]
            mw_get = mw.get
            ccounts = counts[child_len]
            ccounts_get = ccounts.get
            cchain = chain_work[child_len] if child_len >= 2 else None
            for pb, freq in chain.items():
                # (a) full-freedom merges for this prefix
                cursors = mw_get(pb)
                if cursors is None:
                    mw[pb] = {cut: freq}
                else:
                    cursors[cut] = cursors.get(cut, 0) + freq
                # (b) the next-shorter prefix: counted here, chained on
                prefix = pb[:cut]
                ccounts[prefix] = ccounts_get(prefix, 0) + freq
                if cchain is not None:
                    cchain[prefix] = cchain.get(prefix, 0) + freq
        bucket = merge_work.pop(length, None)
        if bucket:
            if counters.enabled:
                counters.add("topdown_work_vectors", len(bucket))
                counters.add(
                    "topdown_work_items", sum(len(c) for c in bucket.values())
                )
            ccounts = counts[child_len]
            ccounts_get = ccounts.get
            # child_len >= 2 whenever the o > 0 push below can trigger
            # (length == 2 only ever cuts at offset 0), so cmw is never
            # dereferenced while None
            cmw = merge_work[child_len] if child_len >= 2 else None
            cmw_get = cmw.get if cmw is not None else None
            for pb, cursors in bucket.items():
                # expand once per vector: the child cut at offset o gets
                # the total frequency of every cursor allowing it (> o);
                # the o == 0 child is peeled off the loops since it is
                # never pushed (no merge freedom left) and needs no
                # prefix slice
                if tick is not None:
                    tick(child_len)
                if len(cursors) == 1:
                    ((limit, running),) = cursors.items()
                    for o in range(limit - isz, 0, -isz):
                        child = pb[:o] + pb[o + isz :]
                        ccounts[child] = ccounts_get(child, 0) + running
                        ccursors = cmw_get(child)
                        if ccursors is None:
                            cmw[child] = {o: running}
                        else:
                            ccursors[o] = ccursors.get(o, 0) + running
                else:
                    ordered = sorted(cursors.items(), reverse=True)
                    limit, running = ordered[0]
                    starts = ordered[1:]
                    ptr = 0
                    n_starts = len(starts)
                    for o in range(limit - isz, 0, -isz):
                        while ptr < n_starts and starts[ptr][0] > o:
                            running += starts[ptr][1]
                            ptr += 1
                        child = pb[:o] + pb[o + isz :]
                        ccounts[child] = ccounts_get(child, 0) + running
                        ccursors = cmw_get(child)
                        if ccursors is None:
                            cmw[child] = {o: running}
                        else:
                            ccursors[o] = ccursors.get(o, 0) + running
                    # every cursor is a positive byte offset, so all
                    # stragglers apply at o == 0
                    while ptr < n_starts:
                        running += starts[ptr][1]
                        ptr += 1
                child = pb[isz:]
                ccounts[child] = ccounts_get(child, 0) + running
        length -= 1
    # drop defaultdict behaviour and any bucket the sweep only peeked at
    return {length: bucket for length, bucket in counts.items() if bucket}


def topdown_subset_path_frequencies(
    plt: PLT, *, work_limit: int | None = DEFAULT_WORK_LIMIT
) -> dict[int, dict[RankPath, int]]:
    """Run the top-down pass; return all subset frequencies by length.

    The result maps ``length -> {rank path -> frequency}`` and contains
    every non-empty subset of every encoded transaction with its exact
    support — the state of Figure 4, keyed by rank paths.  Runs
    :func:`_subset_byte_frequencies` and decodes every key; support-
    filtering callers should prefer :func:`mine_topdown`, which decodes
    only the frequent survivors.

    Raises :class:`TopDownExplosionError` when the estimated work exceeds
    ``work_limit`` (pass ``None`` to disable the guard).
    """
    _check_work_limit(plt, work_limit)
    return {
        length: {_decode_path(pb): freq for pb, freq in bucket.items()}
        for length, bucket in _subset_byte_frequencies(plt).items()
    }


def topdown_subset_frequencies(
    plt: PLT, *, work_limit: int | None = DEFAULT_WORK_LIMIT
) -> dict[int, dict[PositionVector, int]]:
    """Top-down pass with the historical delta-vector result shape.

    Runs :func:`topdown_subset_path_frequencies` and converts each rank
    path back to its position vector (first differences) once at the end.
    Callers that only filter by support should prefer the path form — it
    is what :func:`mine_topdown` consumes directly.
    """
    path_counts = topdown_subset_path_frequencies(plt, work_limit=work_limit)
    return {
        length: {path_to_vector(path): freq for path, freq in bucket.items()}
        for length, bucket in path_counts.items()
    }


def mine_topdown(
    plt: PLT,
    min_support: int | None = None,
    *,
    max_len: int | None = None,
    work_limit: int | None = DEFAULT_WORK_LIMIT,
    governor=None,
) -> list[tuple[tuple[int, ...], int]]:
    """Mine frequent itemsets with the top-down approach.

    Returns ``(rank_tuple, support)`` pairs like
    :func:`~repro.core.conditional.mine_conditional`, so the two miners are
    interchangeable behind the facade.  Works on the packed table
    directly — a decoded rank path *is* the sorted rank tuple — and only
    the frequent survivors pay the decode.

    When ``governor`` trips mid-sweep, the raised
    :class:`~repro.errors.MiningInterrupted` carries in ``partial`` the
    frequent pairs from every *finalized* length and
    ``progress["complete_min_len"]`` — all counts for subset lengths >=
    that value are final and exact.
    """
    if min_support is None:
        min_support = plt.min_support
    if min_support < 1:
        raise InvalidSupportError(f"absolute min_support must be >= 1, got {min_support}")
    _check_work_limit(plt, work_limit)
    try:
        counts = _subset_byte_frequencies(plt, governor=governor)
    except MiningInterrupted as exc:
        raw = governor.progress.pop("_topdown_counts", {}) if governor else {}
        sweep_length = governor.progress.get("sweep_length") if governor else None
        pairs: list[tuple[tuple[int, ...], int]] = []
        if sweep_length is not None:
            for length, bucket in raw.items():
                if length < sweep_length:
                    continue  # still receiving contributions — not exact
                if max_len is not None and length > max_len:
                    continue
                pairs.extend(
                    (_decode_path(pb), freq)
                    for pb, freq in bucket.items()
                    if freq >= min_support
                )
            exc.progress.setdefault("complete_min_len", sweep_length)
        exc.partial = pairs
        raise
    if governor is not None:
        governor.progress.pop("_topdown_counts", None)
    results: list[tuple[tuple[int, ...], int]] = []
    if governor is None:
        extend = results.extend
        for length, bucket in counts.items():
            if max_len is not None and length > max_len:
                continue
            extend(
                (_decode_path(pb), freq)
                for pb, freq in bucket.items()
                if freq >= min_support
            )
        return results
    try:
        for length, bucket in counts.items():
            for pb, freq in bucket.items():
                if freq >= min_support and (max_len is None or length <= max_len):
                    # cap check first so partials never exceed max_itemsets
                    governor.note_itemsets()
                    results.append((_decode_path(pb), freq))
    except MiningInterrupted as exc:
        exc.partial = results
        raise
    return results


def subset_frequencies_flat(
    counts: Mapping[int, Mapping[PositionVector, int]]
) -> dict[PositionVector, int]:
    """Flatten the per-length table (convenience for tests and rendering)."""
    return {vec: f for bucket in counts.values() for vec, f in bucket.items()}
