"""Algorithm 2 — the top-down PLT miner.

The top-down approach materialises the frequency of **every** subset of
every transaction (Figure 4 of the paper), then filters by support.  It is
exponential in transaction length by design; the paper positions it for
very low support thresholds on short-transaction data, where the frequent
set approaches the full subset lattice anyway and anti-monotone pruning
buys nothing.

No-duplication discipline
-------------------------
A subset of transaction ``T = {x0 < ... < x_{k-1}}`` is generated exactly
once by composing the paper's two subset rules (Lemma 4.1.3) canonically:

1. *Prefix seeding* ("part A", folded into construction exactly as the
   paper suggests): for every stored vector, all of its prefixes are
   seeded.  The prefix ending at the subset's **maximal** item is the
   subset's unique ancestor.
2. *Left-shifting merges* ("part B", Algorithm 2's shift discipline):
   interior items are removed by consecutive-position merges at strictly
   **decreasing** indices.  Every work item carries a merge *cursor*
   ``limit`` — merges are only allowed at 0-based indices ``< limit``; a
   child created by merging at index ``i`` gets ``limit = i``.

Any subset has exactly one (prefix, decreasing-merge-sequence)
decomposition, so every (transaction, subset) pair contributes its
frequency exactly once.  Work items are aggregated by ``(vector, limit)``
across transactions — the dictionary-merge the paper's ``D_{i-1}`` lookup
performs — which is what makes the pass feasible on aggregated data.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.plt import PLT
from repro.core.position import PositionVector
from repro.errors import InvalidSupportError, TopDownExplosionError

__all__ = [
    "topdown_subset_frequencies",
    "mine_topdown",
    "estimate_topdown_work",
    "DEFAULT_WORK_LIMIT",
]

#: Default ceiling on generated subset-work items before aggregation savings.
DEFAULT_WORK_LIMIT = 20_000_000


def estimate_topdown_work(plt: PLT) -> int:
    """Upper bound on subset generation events: sum of 2^len per vector.

    Aggregation across identical ``(vector, cursor)`` work items usually
    keeps the real cost far below this, but the bound is what protects the
    process from pathological inputs.
    """
    total = 0
    for length, bucket in plt.partitions.items():
        total += (2 ** length - 1) * len(bucket)
        if total > 1 << 62:  # avoid silly bignums
            break
    return total


def topdown_subset_frequencies(
    plt: PLT, *, work_limit: int | None = DEFAULT_WORK_LIMIT
) -> dict[int, dict[PositionVector, int]]:
    """Run the top-down pass; return all subset frequencies by length.

    The result maps ``length -> {vector -> frequency}`` and contains every
    non-empty subset of every encoded transaction with its exact support —
    the state of Figure 4.

    Raises :class:`TopDownExplosionError` when the estimated work exceeds
    ``work_limit`` (pass ``None`` to disable the guard).
    """
    if work_limit is not None:
        estimate = estimate_topdown_work(plt)
        if estimate > work_limit:
            raise TopDownExplosionError(
                f"top-down pass would generate up to {estimate} subset events "
                f"(work_limit={work_limit}); use the conditional miner or raise "
                f"the limit"
            )

    counts: dict[int, dict[PositionVector, int]] = {}
    # work[(vector, limit)] = frequency, partitioned by vector length
    work: dict[int, dict[tuple[PositionVector, int], int]] = {}

    def count(vec: PositionVector, freq: int) -> None:
        bucket = counts.setdefault(len(vec), {})
        bucket[vec] = bucket.get(vec, 0) + freq

    def push(vec: PositionVector, limit: int, freq: int) -> None:
        bucket = work.setdefault(len(vec), {})
        key = (vec, limit)
        bucket[key] = bucket.get(key, 0) + freq

    # Part A (prefix seeding, folded into "construction" per the paper):
    # every prefix of every stored vector is both counted and queued with a
    # cursor allowing merges anywhere inside it.
    for vec, freq in plt.iter_vectors():
        for j in range(1, len(vec) + 1):
            prefix = vec[:j]
            count(prefix, freq)
            if j >= 2:
                push(prefix, j - 1, freq)

    # Part B: consume partitions longest-first, merging with the
    # left-shift (strictly decreasing index) discipline.  Children always
    # land one length below the partition being consumed, so a descending
    # counter visits everything.
    length = max(work, default=0)
    while length >= 2:
        bucket = work.pop(length, None)
        if bucket:
            for (vec, limit), freq in bucket.items():
                for i in range(limit):
                    child = vec[:i] + (vec[i] + vec[i + 1],) + vec[i + 2 :]
                    count(child, freq)
                    if len(child) >= 2 and i >= 1:
                        push(child, i, freq)
        length -= 1
    return counts


def mine_topdown(
    plt: PLT,
    min_support: int | None = None,
    *,
    max_len: int | None = None,
    work_limit: int | None = DEFAULT_WORK_LIMIT,
) -> list[tuple[tuple[int, ...], int]]:
    """Mine frequent itemsets with the top-down approach.

    Returns ``(rank_tuple, support)`` pairs like
    :func:`~repro.core.conditional.mine_conditional`, so the two miners are
    interchangeable behind the facade.
    """
    if min_support is None:
        min_support = plt.min_support
    if min_support < 1:
        raise InvalidSupportError(f"absolute min_support must be >= 1, got {min_support}")
    from repro.core.position import decode

    counts = topdown_subset_frequencies(plt, work_limit=work_limit)
    results: list[tuple[tuple[int, ...], int]] = []
    for length, bucket in counts.items():
        if max_len is not None and length > max_len:
            continue
        for vec, freq in bucket.items():
            if freq >= min_support:
                results.append((decode(vec), freq))
    return results


def subset_frequencies_flat(
    counts: Mapping[int, Mapping[PositionVector, int]]
) -> dict[PositionVector, int]:
    """Flatten the per-length table (convenience for tests and rendering)."""
    return {vec: f for bucket in counts.values() for vec, f in bucket.items()}
