"""High-level mining facade: one entry point over every miner in the repo.

:func:`mine_frequent_itemsets` accepts raw transactions (any iterable of
item collections, or a :class:`~repro.data.transaction_db.TransactionDatabase`),
a support threshold (absolute count or relative fraction), and a method
name; it returns a :class:`MiningResult`, a thin ordered container with the
standard post-processing operations (closed/maximal filtering, lookups,
dict conversion).

The two PLT miners are the paper's contribution; the rest are the
literature baselines implemented in :mod:`repro.baselines`.  All methods
produce *identical* itemset/support sets on the same input — the test
suite enforces this property.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.conditional import mine_conditional
from repro.core.plt import PLT
from repro.core.rank import sort_key
from repro.core.topdown import mine_topdown
from repro.data.transaction_db import TransactionDatabase, resolve_min_support
from repro.errors import (
    AdmissionRejected,
    InvalidParameterError,
    MiningInterrupted,
    ReproError,
)
from repro.robustness.governor import (
    CancellationToken,
    DegradationPolicy,
    MiningBudget,
    ResourceGovernor,
)

__all__ = [
    "FrequentItemset",
    "MiningResult",
    "PartialResult",
    "ApproximateResult",
    "mine_frequent_itemsets",
    "mine_closed_itemsets",
    "mine_maximal_itemsets",
    "METHODS",
    "GOVERNED_METHODS",
]

Item = Hashable


@dataclass(frozen=True)
class FrequentItemset:
    """An itemset together with its absolute support count."""

    items: tuple
    support: int

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, item: Item) -> bool:
        return item in self.items

    def as_frozenset(self) -> frozenset:
        return frozenset(self.items)

    def relative_support(self, n_transactions: int) -> float:
        if n_transactions <= 0:
            raise InvalidParameterError("n_transactions must be positive")
        return self.support / n_transactions


class MiningResult(Sequence):
    """Ordered collection of frequent itemsets plus run metadata.

    Itemsets are sorted canonically (by length, then lexicographically) so
    results from different miners compare equal.

    ``complete``/``approximate`` distinguish the governed-result variants:
    a plain :class:`MiningResult` is the full exact answer
    (``complete=True, approximate=False``); see :class:`PartialResult` and
    :class:`ApproximateResult`.
    """

    #: True when every frequent itemset at the threshold is present.
    complete = True
    #: True when supports (or coverage) are estimates, not exact counts.
    approximate = False

    def __init__(
        self,
        itemsets: Iterable[FrequentItemset],
        *,
        n_transactions: int,
        min_support: int,
        method: str,
    ) -> None:
        # items repeat across many itemsets — memoize their sort keys so
        # canonical ordering stays cheap even for six-figure result sets
        cache: dict = {}

        def canonical(fi: FrequentItemset):
            keys = []
            for item in fi.items:
                key = cache.get(item)
                if key is None:
                    key = cache[item] = sort_key(item)
                keys.append(key)
            return (len(keys), keys)

        self._itemsets = sorted(itemsets, key=canonical)
        self.n_transactions = n_transactions
        self.min_support = min_support
        self.method = method

    # -- Sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._itemsets)

    def __getitem__(self, idx):
        return self._itemsets[idx]

    def __iter__(self) -> Iterator[FrequentItemset]:
        return iter(self._itemsets)

    def __eq__(self, other: object) -> bool:
        """Equality is *semantic*: same itemsets with same supports."""
        if not isinstance(other, MiningResult):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"MiningResult({len(self)} itemsets, method={self.method!r}, "
            f"min_support={self.min_support}, n_transactions={self.n_transactions})"
        )

    # -- views ------------------------------------------------------------
    def as_dict(self) -> dict[frozenset, int]:
        return {fi.as_frozenset(): fi.support for fi in self._itemsets}

    def itemsets_of_size(self, k: int) -> list[FrequentItemset]:
        return [fi for fi in self._itemsets if len(fi) == k]

    def sizes(self) -> dict[int, int]:
        """Histogram: itemset length -> how many frequent itemsets."""
        hist: dict[int, int] = {}
        for fi in self._itemsets:
            hist[len(fi)] = hist.get(len(fi), 0) + 1
        return hist

    def support_of(self, itemset: Iterable[Item]) -> int | None:
        """Support of the given itemset, or None if it is not frequent."""
        return self.as_dict().get(frozenset(itemset))

    def maximal(self) -> "MiningResult":
        """Itemsets with no frequent proper superset."""
        by_size: dict[int, list[FrequentItemset]] = {}
        for fi in self._itemsets:
            by_size.setdefault(len(fi), []).append(fi)
        all_sets = [fi.as_frozenset() for fi in self._itemsets]
        keep = []
        for fi in self._itemsets:
            s = fi.as_frozenset()
            if not any(s < other for other in all_sets):
                keep.append(fi)
        return MiningResult(
            keep,
            n_transactions=self.n_transactions,
            min_support=self.min_support,
            method=self.method + "+maximal",
        )

    def closed(self) -> "MiningResult":
        """Itemsets with no proper superset of the *same* support."""
        table = self.as_dict()
        keep = []
        for fi in self._itemsets:
            s = fi.as_frozenset()
            if not any(
                s < other and sup == fi.support for other, sup in table.items()
            ):
                keep.append(fi)
        return MiningResult(
            keep,
            n_transactions=self.n_transactions,
            min_support=self.min_support,
            method=self.method + "+closed",
        )


class PartialResult(MiningResult):
    """The itemsets mined before a budget trip or cancellation.

    Every itemset present carries its **exact** support — governed miners
    never report estimated counts — but the collection is not the full
    frequent set.  ``stop_reason`` says why mining stopped
    (``"deadline"``, ``"max_itemsets"``, ``"memory"``, ``"cancelled"``);
    ``progress`` holds the miner's completion markers, e.g.
    ``complete_from_rank`` (conditional/out-of-core: every itemset whose
    maximal rank is >= the marker was fully enumerated) or
    ``complete_min_len`` (top-down: counts for subset lengths >= the
    marker are final).
    """

    complete = False

    def __init__(
        self,
        itemsets: Iterable[FrequentItemset],
        *,
        n_transactions: int,
        min_support: int,
        method: str,
        stop_reason: str | None,
        elapsed: float = 0.0,
        progress: dict | None = None,
    ) -> None:
        super().__init__(
            itemsets,
            n_transactions=n_transactions,
            min_support=min_support,
            method=method + "+partial",
        )
        self.stop_reason = stop_reason
        self.elapsed = elapsed
        self.progress = dict(progress or {})

    @property
    def complete_from_rank(self) -> int | None:
        return self.progress.get("complete_from_rank")

    def __repr__(self) -> str:
        return (
            f"PartialResult({len(self)} itemsets, stop_reason={self.stop_reason!r}, "
            f"method={self.method!r}, elapsed={self.elapsed:.3f}s)"
        )


class ApproximateResult(MiningResult):
    """A degraded-mode answer: bounded, flagged, never mistaken for exact.

    Produced when a :class:`~repro.robustness.governor.DegradationPolicy`
    converts a budget trip into an approximate answer.  ``disclaimer`` is
    a human-readable accuracy statement (also printed by the CLI);
    ``info`` records the fallback used and its parameters.
    """

    approximate = True
    complete = False

    def __init__(
        self,
        itemsets: Iterable[FrequentItemset],
        *,
        n_transactions: int,
        min_support: int,
        method: str,
        disclaimer: str,
        info: dict | None = None,
    ) -> None:
        super().__init__(
            itemsets,
            n_transactions=n_transactions,
            min_support=min_support,
            method=method,
        )
        self.disclaimer = disclaimer
        self.info = dict(info or {})

    def __repr__(self) -> str:
        return (
            f"ApproximateResult({len(self)} itemsets, method={self.method!r}, "
            f"disclaimer={self.disclaimer!r})"
        )


# ---------------------------------------------------------------------------
# method registry
# ---------------------------------------------------------------------------
def _decode_partial(exc: MiningInterrupted, table) -> None:
    """Decode a miner's rank-pair ``partial`` into item space, in place.

    Kept lean (no set construction, one sort per itemset) — partials can
    hold tens of thousands of pairs and this runs *after* the deadline
    already expired, so it is pure latency on top of the budget.
    """
    # rank -> label and rank -> sort position, computed once; per-pair work
    # is then a list-indexed sort plus a tuple build
    labels = (None,) + table.items()
    order = sorted(range(1, len(labels)), key=lambda r: sort_key(labels[r]))
    position = [0] * len(labels)
    for pos, r in enumerate(order):
        position[r] = pos
    key = position.__getitem__
    exc.partial_items = [
        (tuple(labels[r] for r in sorted(ranks, key=key)), sup)
        for ranks, sup in exc.partial
    ]


def _mine_plt(transactions, abs_support, order, max_len, **kwargs):
    governor = kwargs.get("governor")
    plt = PLT.from_transactions(transactions, abs_support, order=order)
    if governor is not None:
        governor.admit(plt, method="conditional")
    table = plt.rank_table
    try:
        pairs = mine_conditional(
            plt, abs_support, max_len=max_len, governor=governor
        )
    except MiningInterrupted as exc:
        _decode_partial(exc, table)
        raise
    return {frozenset(table.decode_ranks(ranks)): sup for ranks, sup in pairs}


def _mine_plt_topdown(transactions, abs_support, order, max_len, **kwargs):
    from repro.core.topdown import DEFAULT_WORK_LIMIT

    governor = kwargs.get("governor")
    plt = PLT.from_transactions(transactions, abs_support, order=order)
    if governor is not None:
        governor.admit(plt, method="topdown")
    table = plt.rank_table
    try:
        pairs = mine_topdown(
            plt,
            abs_support,
            max_len=max_len,
            work_limit=kwargs.get("work_limit", DEFAULT_WORK_LIMIT),
            governor=governor,
        )
    except MiningInterrupted as exc:
        _decode_partial(exc, table)
        raise
    return {frozenset(table.decode_ranks(ranks)): sup for ranks, sup in pairs}


def _mine_bruteforce(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.bruteforce import mine_bruteforce

    return mine_bruteforce(transactions, abs_support, max_len=max_len)


def _mine_apriori(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.apriori import mine_apriori

    return mine_apriori(transactions, abs_support, max_len=max_len)


def _mine_fpgrowth(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.fpgrowth import mine_fpgrowth

    return mine_fpgrowth(transactions, abs_support, max_len=max_len)


def _mine_eclat(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.eclat import mine_eclat

    return mine_eclat(transactions, abs_support, max_len=max_len)


def _mine_declat(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.eclat import mine_declat

    return mine_declat(transactions, abs_support, max_len=max_len)


def _mine_hmine(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.hmine import mine_hmine

    return mine_hmine(transactions, abs_support, max_len=max_len)


def _mine_aprioritid(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.aprioritid import mine_aprioritid

    return mine_aprioritid(transactions, abs_support, max_len=max_len)


def _mine_partition(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.partition import mine_partition

    return mine_partition(
        transactions,
        abs_support,
        max_len=max_len,
        n_partitions=kwargs.get("n_partitions", 4),
    )


def _mine_dic(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.dic import mine_dic

    return mine_dic(
        transactions,
        abs_support,
        max_len=max_len,
        interval=kwargs.get("interval", 100),
    )


def _mine_count_distribution(transactions, abs_support, order, max_len, **kwargs):
    from repro.parallel.count_distribution import mine_count_distribution

    return mine_count_distribution(
        transactions,
        abs_support,
        max_len=max_len,
        n_nodes=kwargs.get("n_nodes", 4),
        use_processes=kwargs.get("use_processes", False),
    )


def _mine_plt_parallel(transactions, abs_support, order, max_len, **kwargs):
    from repro.parallel.executor import mine_parallel

    governor = kwargs.get("governor")
    plt = PLT.from_transactions(transactions, abs_support, order=order)
    if governor is not None:
        governor.admit(plt, method="conditional")
    parallel_kwargs = {
        key: kwargs[key]
        for key in ("timeout", "retry", "transport")
        if key in kwargs
    }
    table = plt.rank_table
    try:
        pairs = mine_parallel(
            plt,
            abs_support,
            max_len=max_len,
            n_workers=kwargs.get("n_workers"),
            governor=governor,
            **parallel_kwargs,
        )
    except MiningInterrupted as exc:
        _decode_partial(exc, table)
        raise
    return {frozenset(table.decode_ranks(ranks)): sup for ranks, sup in pairs}


def _mine_plt_distributed(transactions, abs_support, order, max_len, **kwargs):
    from repro.parallel.distributed import mine_distributed

    pairs, _stats, _table = mine_distributed(
        transactions,
        abs_support,
        n_nodes=kwargs.get("n_nodes", 4),
        max_len=max_len,
        backend=kwargs.get("backend", "sim"),
        backend_options=kwargs.get("backend_options"),
    )
    return {frozenset(items): sup for items, sup in pairs}


METHODS: dict[str, Callable] = {
    "plt": _mine_plt,
    "plt-conditional": _mine_plt,
    "plt-topdown": _mine_plt_topdown,
    "plt-parallel": _mine_plt_parallel,
    "plt-distributed": _mine_plt_distributed,
    "apriori": _mine_apriori,
    "aprioritid": _mine_aprioritid,
    "apriori-cd": _mine_count_distribution,
    "partition": _mine_partition,
    "dic": _mine_dic,
    "fpgrowth": _mine_fpgrowth,
    "eclat": _mine_eclat,
    "declat": _mine_declat,
    "hmine": _mine_hmine,
    "bruteforce": _mine_bruteforce,
}

#: Methods whose hot loops consult a :class:`ResourceGovernor`.  Budget /
#: cancellation kwargs on the facade are rejected for any other method —
#: silently ignoring them would defeat the whole point of a deadline.
GOVERNED_METHODS = frozenset({"plt", "plt-conditional", "plt-topdown", "plt-parallel"})


def _degrade(
    transactions: TransactionDatabase,
    abs_support: int,
    order: str,
    max_len: int | None,
    policy: DegradationPolicy,
    method: str,
    reason: str | None,
) -> ApproximateResult:
    """Produce the bounded approximate answer the policy asked for."""
    import random

    n = len(transactions)
    if policy.fallback == "topk":
        from repro.core.topk import mine_top_k

        plt = PLT.from_transactions(transactions, abs_support, order=order)
        pairs = mine_top_k(plt, policy.k, max_len=max_len)
        table = plt.rank_table
        itemsets = [
            FrequentItemset(
                tuple(sorted(table.decode_ranks(ranks), key=sort_key)), sup
            )
            for ranks, sup in pairs
            if sup >= abs_support
        ]
        disclaimer = (
            f"approximate result: supports are exact but only the "
            f"{policy.k} most frequent itemsets were mined "
            f"(budget stop: {reason})"
        )
        info = {"fallback": "topk", "k": policy.k, "stop_reason": reason}
    elif policy.fallback == "sketch":
        from repro.stream.summary import StreamSummary

        summary = StreamSummary(
            epsilon=policy.epsilon,
            delta=policy.delta,
            capacity=policy.hh_capacity,
            seed=policy.seed,
        )
        for t in transactions:
            summary.push(t)
        sketched = summary.as_result(abs_support, method=method + "+approx-sketch")
        itemsets = list(sketched)
        disclaimer = (
            f"approximate result: supports are one-sided count-min estimates "
            f"(never below the true support, above it by at most "
            f"{summary.error_bound(1)} for items / {summary.error_bound(2)} "
            f"for pairs w.p. >= {1.0 - policy.delta:g}); only monitored 1- "
            f"and 2-itemsets are enumerated (budget stop: {reason})"
        )
        info = dict(sketched.info or {})
        info["stop_reason"] = reason
    else:
        rng = random.Random(policy.seed)
        size = max(1, round(n * policy.sample_fraction))
        if size >= n:
            sample = list(transactions)
            size = n
        else:
            sample = rng.sample(list(transactions), size)
        # scale the threshold to the sample, but never below the full-run
        # floor: a sample mined at support 1 enumerates every subset of
        # every sampled transaction — the opposite of a *bounded* fallback
        scaled_support = max(min(abs_support, 2), round(abs_support * size / n))
        sub = mine_frequent_itemsets(
            sample, scaled_support, method="plt", order=order, max_len=max_len
        )
        scale = n / size
        itemsets = [
            FrequentItemset(fi.items, est)
            for fi in sub
            if (est := round(fi.support * scale)) >= abs_support
        ]
        disclaimer = (
            f"approximate result: supports are estimates scaled up from a "
            f"{size}/{n} transaction sample (seed={policy.seed}, "
            f"budget stop: {reason})"
        )
        info = {
            "fallback": "sampling",
            "sample_size": size,
            "sample_fraction": policy.sample_fraction,
            "seed": policy.seed,
            "stop_reason": reason,
        }
    return ApproximateResult(
        itemsets,
        n_transactions=n,
        min_support=abs_support,
        method=method + "+approx-" + policy.fallback,
        disclaimer=disclaimer,
        info=info,
    )


def mine_frequent_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_support: float | int,
    *,
    method: str = "plt",
    order: str = "lexicographic",
    max_len: int | None = None,
    deadline: float | None = None,
    max_itemsets: int | None = None,
    memory_budget: int | None = None,
    budget: MiningBudget | None = None,
    cancel: CancellationToken | None = None,
    degradation: DegradationPolicy | None = None,
    on_budget: str = "partial",
    **kwargs,
) -> MiningResult:
    """Mine all frequent itemsets from ``transactions``.

    Parameters
    ----------
    transactions:
        Any iterable of item collections, or a :class:`TransactionDatabase`.
    min_support:
        Absolute count (int >= 1) or relative fraction (float in (0, 1]).
    method:
        One of ``plt`` (alias ``plt-conditional``; the paper's Algorithm 3),
        ``plt-topdown`` (Algorithm 2), ``plt-parallel``, or a baseline:
        ``apriori``, ``aprioritid``, ``apriori-cd`` (count distribution),
        ``partition``, ``dic``, ``fpgrowth``, ``eclat``, ``declat``,
        ``hmine``, ``bruteforce``.
    order:
        Item-ordering policy for the PLT's rank table (PLT methods only):
        ``lexicographic`` (paper), ``support_asc``, ``support_desc``.
    max_len:
        Optional cap on itemset length.
    deadline, max_itemsets, memory_budget:
        Shorthand for ``budget=MiningBudget(...)``: wall-clock seconds,
        emitted-itemset cap, estimated-byte cap.  Only the PLT methods
        (:data:`GOVERNED_METHODS`) support governance; other methods
        raise :class:`~repro.errors.ReproError` when any budget kwarg is
        set.
    budget:
        A full :class:`~repro.robustness.governor.MiningBudget` (mutually
        exclusive with the shorthand kwargs).
    cancel:
        A :class:`~repro.robustness.governor.CancellationToken`; flip it
        from another thread to stop mining cooperatively.
    degradation:
        A :class:`~repro.robustness.governor.DegradationPolicy`.  When the
        budget trips (or admission control rejects the run), fall back to
        a bounded approximate miner and return an
        :class:`ApproximateResult` instead of a partial answer.
    on_budget:
        ``"partial"`` (default) converts a budget trip into a
        :class:`PartialResult`; ``"raise"`` propagates the
        :class:`~repro.errors.BudgetExceeded` /
        :class:`~repro.errors.Cancelled` exception instead.
    kwargs:
        Method-specific options (e.g. ``n_workers`` for ``plt-parallel``,
        ``work_limit`` for ``plt-topdown``).

    Examples
    --------
    >>> from repro import mine_frequent_itemsets
    >>> res = mine_frequent_itemsets([("a", "b"), ("a", "b", "c"), ("a",)], 2)
    >>> sorted((tuple(sorted(fi.items)), fi.support) for fi in res)
    [(('a',), 3), (('a', 'b'), 2), (('b',), 2)]
    """
    if method not in METHODS:
        raise ReproError(
            f"unknown mining method {method!r}; available: {', '.join(sorted(METHODS))}"
        )
    if on_budget not in ("partial", "raise"):
        raise InvalidParameterError(
            f"on_budget must be 'partial' or 'raise', got {on_budget!r}"
        )
    shorthand = (deadline, max_itemsets, memory_budget)
    if budget is not None and any(v is not None for v in shorthand):
        raise InvalidParameterError(
            "pass either budget= or the deadline/max_itemsets/memory_budget "
            "shorthand kwargs, not both"
        )
    if budget is None and any(v is not None for v in shorthand):
        budget = MiningBudget(
            deadline=deadline,
            max_itemsets=max_itemsets,
            memory_budget=memory_budget,
        )
    governor = None
    if budget is not None or cancel is not None:
        if method not in GOVERNED_METHODS:
            raise ReproError(
                f"method {method!r} does not support resource governance; "
                f"governed methods: {', '.join(sorted(GOVERNED_METHODS))}"
            )
        governor = ResourceGovernor(budget, cancel).start()
        kwargs["governor"] = governor
    elif degradation is not None:
        raise InvalidParameterError(
            "a DegradationPolicy needs a budget or cancellation token to "
            "degrade from; pass deadline/max_itemsets/memory_budget/budget/cancel"
        )
    if not isinstance(transactions, TransactionDatabase):
        transactions = TransactionDatabase(transactions)
    abs_support = resolve_min_support(min_support, len(transactions))
    try:
        table = METHODS[method](transactions, abs_support, order, max_len, **kwargs)
    except AdmissionRejected:
        if degradation is None:
            raise
        return _degrade(
            transactions, abs_support, order, max_len, degradation, method,
            "admission",
        )
    except MiningInterrupted as exc:
        if on_budget == "raise":
            raise
        if degradation is not None:
            return _degrade(
                transactions, abs_support, order, max_len, degradation, method,
                exc.reason,
            )
        partial_items = getattr(exc, "partial_items", [])
        itemsets = [FrequentItemset(items, sup) for items, sup in partial_items]
        progress = dict(governor.progress) if governor is not None else {}
        progress.update(exc.progress)
        progress = {k: v for k, v in progress.items() if not k.startswith("_")}
        return PartialResult(
            itemsets,
            n_transactions=len(transactions),
            min_support=abs_support,
            method=method,
            stop_reason=exc.reason,
            elapsed=governor.elapsed() if governor is not None else 0.0,
            progress=progress,
        )
    itemsets = [
        FrequentItemset(tuple(sorted(items, key=sort_key)), sup)
        for items, sup in table.items()
    ]
    return MiningResult(
        itemsets,
        n_transactions=len(transactions),
        min_support=abs_support,
        method=method,
    )


def _mine_condensed(transactions, min_support, order, kind):
    from repro.core.closed import mine_closed, mine_maximal

    if not isinstance(transactions, TransactionDatabase):
        transactions = TransactionDatabase(transactions)
    abs_support = resolve_min_support(min_support, len(transactions))
    plt = PLT.from_transactions(transactions, abs_support, order=order)
    miner = mine_closed if kind == "closed" else mine_maximal
    pairs = miner(plt, abs_support)
    table = plt.rank_table
    itemsets = [
        FrequentItemset(
            tuple(sorted(table.decode_ranks(ranks), key=sort_key)), sup
        )
        for ranks, sup in pairs
    ]
    return MiningResult(
        itemsets,
        n_transactions=len(transactions),
        min_support=abs_support,
        method=f"plt-{kind}",
    )


def mine_closed_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_support: float | int,
    *,
    order: str = "lexicographic",
) -> MiningResult:
    """Mine only the *closed* frequent itemsets (lossless condensed form).

    Equivalent to ``mine_frequent_itemsets(...).closed()`` but computed
    directly on the conditional PLT with closure pruning, without
    materialising the full frequent set.
    """
    return _mine_condensed(transactions, min_support, order, "closed")


def mine_maximal_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_support: float | int,
    *,
    order: str = "lexicographic",
) -> MiningResult:
    """Mine only the *maximal* frequent itemsets (the frequent border)."""
    return _mine_condensed(transactions, min_support, order, "maximal")
