"""High-level mining facade: one entry point over every miner in the repo.

:func:`mine_frequent_itemsets` accepts raw transactions (any iterable of
item collections, or a :class:`~repro.data.transaction_db.TransactionDatabase`),
a support threshold (absolute count or relative fraction), and a method
name; it returns a :class:`MiningResult`, a thin ordered container with the
standard post-processing operations (closed/maximal filtering, lookups,
dict conversion).

The two PLT miners are the paper's contribution; the rest are the
literature baselines implemented in :mod:`repro.baselines`.  All methods
produce *identical* itemset/support sets on the same input — the test
suite enforces this property.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.conditional import mine_conditional
from repro.core.plt import PLT
from repro.core.rank import sort_key
from repro.core.topdown import mine_topdown
from repro.data.transaction_db import TransactionDatabase, resolve_min_support
from repro.errors import ReproError

__all__ = [
    "FrequentItemset",
    "MiningResult",
    "mine_frequent_itemsets",
    "mine_closed_itemsets",
    "mine_maximal_itemsets",
    "METHODS",
]

Item = Hashable


@dataclass(frozen=True)
class FrequentItemset:
    """An itemset together with its absolute support count."""

    items: tuple
    support: int

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, item: Item) -> bool:
        return item in self.items

    def as_frozenset(self) -> frozenset:
        return frozenset(self.items)

    def relative_support(self, n_transactions: int) -> float:
        if n_transactions <= 0:
            raise ValueError("n_transactions must be positive")
        return self.support / n_transactions


class MiningResult(Sequence):
    """Ordered collection of frequent itemsets plus run metadata.

    Itemsets are sorted canonically (by length, then lexicographically) so
    results from different miners compare equal.
    """

    def __init__(
        self,
        itemsets: Iterable[FrequentItemset],
        *,
        n_transactions: int,
        min_support: int,
        method: str,
    ) -> None:
        self._itemsets = sorted(
            itemsets, key=lambda fi: (len(fi.items), [sort_key(i) for i in fi.items])
        )
        self.n_transactions = n_transactions
        self.min_support = min_support
        self.method = method

    # -- Sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._itemsets)

    def __getitem__(self, idx):
        return self._itemsets[idx]

    def __iter__(self) -> Iterator[FrequentItemset]:
        return iter(self._itemsets)

    def __eq__(self, other: object) -> bool:
        """Equality is *semantic*: same itemsets with same supports."""
        if not isinstance(other, MiningResult):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"MiningResult({len(self)} itemsets, method={self.method!r}, "
            f"min_support={self.min_support}, n_transactions={self.n_transactions})"
        )

    # -- views ------------------------------------------------------------
    def as_dict(self) -> dict[frozenset, int]:
        return {fi.as_frozenset(): fi.support for fi in self._itemsets}

    def itemsets_of_size(self, k: int) -> list[FrequentItemset]:
        return [fi for fi in self._itemsets if len(fi) == k]

    def sizes(self) -> dict[int, int]:
        """Histogram: itemset length -> how many frequent itemsets."""
        hist: dict[int, int] = {}
        for fi in self._itemsets:
            hist[len(fi)] = hist.get(len(fi), 0) + 1
        return hist

    def support_of(self, itemset: Iterable[Item]) -> int | None:
        """Support of the given itemset, or None if it is not frequent."""
        return self.as_dict().get(frozenset(itemset))

    def maximal(self) -> "MiningResult":
        """Itemsets with no frequent proper superset."""
        by_size: dict[int, list[FrequentItemset]] = {}
        for fi in self._itemsets:
            by_size.setdefault(len(fi), []).append(fi)
        all_sets = [fi.as_frozenset() for fi in self._itemsets]
        keep = []
        for fi in self._itemsets:
            s = fi.as_frozenset()
            if not any(s < other for other in all_sets):
                keep.append(fi)
        return MiningResult(
            keep,
            n_transactions=self.n_transactions,
            min_support=self.min_support,
            method=self.method + "+maximal",
        )

    def closed(self) -> "MiningResult":
        """Itemsets with no proper superset of the *same* support."""
        table = self.as_dict()
        keep = []
        for fi in self._itemsets:
            s = fi.as_frozenset()
            if not any(
                s < other and sup == fi.support for other, sup in table.items()
            ):
                keep.append(fi)
        return MiningResult(
            keep,
            n_transactions=self.n_transactions,
            min_support=self.min_support,
            method=self.method + "+closed",
        )


# ---------------------------------------------------------------------------
# method registry
# ---------------------------------------------------------------------------
def _mine_plt(transactions, abs_support, order, max_len, **kwargs):
    plt = PLT.from_transactions(transactions, abs_support, order=order)
    pairs = mine_conditional(plt, abs_support, max_len=max_len)
    table = plt.rank_table
    return {frozenset(table.decode_ranks(ranks)): sup for ranks, sup in pairs}


def _mine_plt_topdown(transactions, abs_support, order, max_len, **kwargs):
    from repro.core.topdown import DEFAULT_WORK_LIMIT

    plt = PLT.from_transactions(transactions, abs_support, order=order)
    pairs = mine_topdown(
        plt,
        abs_support,
        max_len=max_len,
        work_limit=kwargs.get("work_limit", DEFAULT_WORK_LIMIT),
    )
    table = plt.rank_table
    return {frozenset(table.decode_ranks(ranks)): sup for ranks, sup in pairs}


def _mine_bruteforce(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.bruteforce import mine_bruteforce

    return mine_bruteforce(transactions, abs_support, max_len=max_len)


def _mine_apriori(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.apriori import mine_apriori

    return mine_apriori(transactions, abs_support, max_len=max_len)


def _mine_fpgrowth(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.fpgrowth import mine_fpgrowth

    return mine_fpgrowth(transactions, abs_support, max_len=max_len)


def _mine_eclat(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.eclat import mine_eclat

    return mine_eclat(transactions, abs_support, max_len=max_len)


def _mine_declat(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.eclat import mine_declat

    return mine_declat(transactions, abs_support, max_len=max_len)


def _mine_hmine(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.hmine import mine_hmine

    return mine_hmine(transactions, abs_support, max_len=max_len)


def _mine_aprioritid(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.aprioritid import mine_aprioritid

    return mine_aprioritid(transactions, abs_support, max_len=max_len)


def _mine_partition(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.partition import mine_partition

    return mine_partition(
        transactions,
        abs_support,
        max_len=max_len,
        n_partitions=kwargs.get("n_partitions", 4),
    )


def _mine_dic(transactions, abs_support, order, max_len, **kwargs):
    from repro.baselines.dic import mine_dic

    return mine_dic(
        transactions,
        abs_support,
        max_len=max_len,
        interval=kwargs.get("interval", 100),
    )


def _mine_count_distribution(transactions, abs_support, order, max_len, **kwargs):
    from repro.parallel.count_distribution import mine_count_distribution

    return mine_count_distribution(
        transactions,
        abs_support,
        max_len=max_len,
        n_nodes=kwargs.get("n_nodes", 4),
        use_processes=kwargs.get("use_processes", False),
    )


def _mine_plt_parallel(transactions, abs_support, order, max_len, **kwargs):
    from repro.parallel.executor import mine_parallel

    plt = PLT.from_transactions(transactions, abs_support, order=order)
    parallel_kwargs = {
        key: kwargs[key] for key in ("timeout", "retry") if key in kwargs
    }
    pairs = mine_parallel(
        plt,
        abs_support,
        max_len=max_len,
        n_workers=kwargs.get("n_workers"),
        **parallel_kwargs,
    )
    table = plt.rank_table
    return {frozenset(table.decode_ranks(ranks)): sup for ranks, sup in pairs}


METHODS: dict[str, Callable] = {
    "plt": _mine_plt,
    "plt-conditional": _mine_plt,
    "plt-topdown": _mine_plt_topdown,
    "plt-parallel": _mine_plt_parallel,
    "apriori": _mine_apriori,
    "aprioritid": _mine_aprioritid,
    "apriori-cd": _mine_count_distribution,
    "partition": _mine_partition,
    "dic": _mine_dic,
    "fpgrowth": _mine_fpgrowth,
    "eclat": _mine_eclat,
    "declat": _mine_declat,
    "hmine": _mine_hmine,
    "bruteforce": _mine_bruteforce,
}


def mine_frequent_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_support: float | int,
    *,
    method: str = "plt",
    order: str = "lexicographic",
    max_len: int | None = None,
    **kwargs,
) -> MiningResult:
    """Mine all frequent itemsets from ``transactions``.

    Parameters
    ----------
    transactions:
        Any iterable of item collections, or a :class:`TransactionDatabase`.
    min_support:
        Absolute count (int >= 1) or relative fraction (float in (0, 1]).
    method:
        One of ``plt`` (alias ``plt-conditional``; the paper's Algorithm 3),
        ``plt-topdown`` (Algorithm 2), ``plt-parallel``, or a baseline:
        ``apriori``, ``aprioritid``, ``apriori-cd`` (count distribution),
        ``partition``, ``dic``, ``fpgrowth``, ``eclat``, ``declat``,
        ``hmine``, ``bruteforce``.
    order:
        Item-ordering policy for the PLT's rank table (PLT methods only):
        ``lexicographic`` (paper), ``support_asc``, ``support_desc``.
    max_len:
        Optional cap on itemset length.
    kwargs:
        Method-specific options (e.g. ``n_workers`` for ``plt-parallel``,
        ``work_limit`` for ``plt-topdown``).

    Examples
    --------
    >>> from repro import mine_frequent_itemsets
    >>> res = mine_frequent_itemsets([("a", "b"), ("a", "b", "c"), ("a",)], 2)
    >>> sorted((tuple(sorted(fi.items)), fi.support) for fi in res)
    [(('a',), 3), (('a', 'b'), 2), (('b',), 2)]
    """
    if method not in METHODS:
        raise ReproError(
            f"unknown mining method {method!r}; available: {', '.join(sorted(METHODS))}"
        )
    if not isinstance(transactions, TransactionDatabase):
        transactions = TransactionDatabase(transactions)
    abs_support = resolve_min_support(min_support, len(transactions))
    table = METHODS[method](transactions, abs_support, order, max_len, **kwargs)
    itemsets = [
        FrequentItemset(tuple(sorted(items, key=sort_key)), sup)
        for items, sup in table.items()
    ]
    return MiningResult(
        itemsets,
        n_transactions=len(transactions),
        min_support=abs_support,
        method=method,
    )


def _mine_condensed(transactions, min_support, order, kind):
    from repro.core.closed import mine_closed, mine_maximal

    if not isinstance(transactions, TransactionDatabase):
        transactions = TransactionDatabase(transactions)
    abs_support = resolve_min_support(min_support, len(transactions))
    plt = PLT.from_transactions(transactions, abs_support, order=order)
    miner = mine_closed if kind == "closed" else mine_maximal
    pairs = miner(plt, abs_support)
    table = plt.rank_table
    itemsets = [
        FrequentItemset(
            tuple(sorted(table.decode_ranks(ranks), key=sort_key)), sup
        )
        for ranks, sup in pairs
    ]
    return MiningResult(
        itemsets,
        n_transactions=len(transactions),
        min_support=abs_support,
        method=f"plt-{kind}",
    )


def mine_closed_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_support: float | int,
    *,
    order: str = "lexicographic",
) -> MiningResult:
    """Mine only the *closed* frequent itemsets (lossless condensed form).

    Equivalent to ``mine_frequent_itemsets(...).closed()`` but computed
    directly on the conditional PLT with closure pruning, without
    materialising the full frequent set.
    """
    return _mine_condensed(transactions, min_support, order, "closed")


def mine_maximal_itemsets(
    transactions: Iterable[Iterable[Item]],
    min_support: float | int,
    *,
    order: str = "lexicographic",
) -> MiningResult:
    """Mine only the *maximal* frequent itemsets (the frequent border)."""
    return _mine_condensed(transactions, min_support, order, "maximal")
