"""Core PLT implementation: the paper's primary contribution.

* :mod:`repro.core.rank` — the ``Rank`` function (Definition 4.1.1)
* :mod:`repro.core.position` — position-vector algebra (Lemmas 4.1.1–4.1.3)
* :mod:`repro.core.plt` — the PLT structure and Algorithm 1
* :mod:`repro.core.topdown` — Algorithm 2
* :mod:`repro.core.conditional` — Algorithm 3
* :mod:`repro.core.closed` — closed/maximal mining over the PLT
* :mod:`repro.core.incremental` — incremental PLT maintenance
* :mod:`repro.core.lextree` — the explicit lexicographic tree (Figures 1–2)
* :mod:`repro.core.mining` — the user-facing facade
"""

from repro.core.closed import mine_closed, mine_maximal
from repro.core.constraints import mine_constrained, verify_antimonotone
from repro.core.conditional import mine_conditional
from repro.core.incremental import IncrementalPLT
from repro.core.mining import (
    ApproximateResult,
    FrequentItemset,
    MiningResult,
    PartialResult,
    mine_closed_itemsets,
    mine_frequent_itemsets,
    mine_maximal_itemsets,
)
from repro.core.plt import PLT, PLTStats, build_plt
from repro.core.topk import mine_top_k
from repro.core.window import SlidingWindowPLT
from repro.core.rank import RankTable
from repro.core.topdown import mine_topdown, topdown_subset_frequencies

__all__ = [
    "PLT",
    "PLTStats",
    "build_plt",
    "RankTable",
    "IncrementalPLT",
    "SlidingWindowPLT",
    "mine_top_k",
    "mine_constrained",
    "verify_antimonotone",
    "mine_conditional",
    "mine_topdown",
    "mine_closed",
    "mine_maximal",
    "topdown_subset_frequencies",
    "FrequentItemset",
    "MiningResult",
    "PartialResult",
    "ApproximateResult",
    "mine_frequent_itemsets",
    "mine_closed_itemsets",
    "mine_maximal_itemsets",
]
