"""The Positional Lexicographic Tree structure and its construction.

Algorithm 1 of the paper, plus the structure's query surface.  The PLT's
"matrix" representation (Figure 3a) is a partitioned, aggregated vector
table::

    partitions: {length k -> {position vector -> frequency}}

and the mining-side index (the ``V.sum`` the paper stores with every
vector) is::

    sum_index: {sum s -> {position vector -> frequency}}

where ``s`` is the rank of the vector's maximal item — exactly the key
Algorithm 3 uses to find an item's conditional database.

Construction is the paper's two scans: scan 1 counts item supports and
builds the :class:`~repro.core.rank.RankTable` over frequent items; scan 2
filters each transaction to its frequent items, encodes the position
vector, and increments its aggregated frequency.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass
from itertools import accumulate
from typing import Hashable

from repro.core import position
from repro.core.position import PositionVector, RankPath
from repro.core.rank import RankTable
from repro.data.transaction_db import item_supports, resolve_min_support
from repro.errors import InvalidSupportError, InvalidVectorError, UnknownItemError

__all__ = ["PLT", "PLTStats", "build_plt"]

Item = Hashable


@dataclass(frozen=True)
class PLTStats:
    """Size statistics reported by benchmarks B4/B9."""

    n_transactions: int
    n_encoded_transactions: int
    n_frequent_items: int
    n_vectors: int
    n_positions: int
    max_vector_len: int

    @property
    def compression_ratio(self) -> float:
        """Encoded transactions per distinct stored vector (>= 1)."""
        if self.n_vectors == 0:
            return 1.0
        return self.n_encoded_transactions / self.n_vectors


class PLT:
    """The positional lexicographic tree (aggregated vector form).

    Instances are built with :meth:`from_transactions` (Algorithm 1) or, for
    internal/conditional use, from pre-encoded vectors with
    :meth:`from_vectors`.  The structure is conceptually immutable after
    construction; the conditional miner works on copies of the sum index.

    Attributes
    ----------
    rank_table:
        The ``Rank`` function over the frequent items.
    min_support:
        The absolute support threshold the structure was built with.
    n_transactions:
        Total number of input transactions (including those that encoded
        to nothing because all their items were infrequent).
    """

    __slots__ = (
        "rank_table",
        "min_support",
        "n_transactions",
        "_partitions",
        "_sum_index",
        "_rank_paths",
    )

    def __init__(
        self,
        rank_table: RankTable,
        vectors: Mapping[PositionVector, int],
        *,
        min_support: int,
        n_transactions: int,
    ) -> None:
        self.rank_table = rank_table
        self.min_support = min_support
        self.n_transactions = n_transactions
        partitions: dict[int, dict[PositionVector, int]] = defaultdict(dict)
        sum_index: dict[int, dict[PositionVector, int]] = defaultdict(dict)
        rank_paths: dict[int, dict[RankPath, int]] = defaultdict(dict)
        for vec, freq in vectors.items():
            position.validate(vec)
            if freq <= 0:
                raise InvalidVectorError(f"vector frequency must be positive: {vec!r} -> {freq}")
            # One accumulate pass yields everything the indexes need: the
            # rank path itself, its last element (= the vector's sum, the
            # Algorithm 3 bucket key) and the length partition key.
            path = tuple(accumulate(vec))
            total = path[-1]
            partitions[len(vec)][vec] = freq
            sum_index[total][vec] = freq
            rank_paths[total][path] = freq
        # Freeze back to plain dicts: lookups of absent keys must miss, not
        # materialise empty buckets.
        self._partitions = dict(partitions)
        self._sum_index = dict(sum_index)
        self._rank_paths = dict(rank_paths)

    # ------------------------------------------------------------------
    # construction (Algorithm 1)
    # ------------------------------------------------------------------
    @classmethod
    def from_transactions(
        cls,
        transactions: Iterable[Iterable[Item]],
        min_support: float | int,
        *,
        order: str = "lexicographic",
    ) -> "PLT":
        """Algorithm 1: two scans over the database.

        ``transactions`` may be any re-iterable collection (a list, a
        :class:`~repro.data.transaction_db.TransactionDatabase`, ...).  A
        one-shot iterator is materialised first, since the algorithm
        fundamentally needs two passes.
        """
        if isinstance(transactions, Iterator):
            transactions = [frozenset(t) for t in transactions]
        # Scan 1: item supports -> Rank over frequent items.
        supports = item_supports(transactions)
        n_transactions = sum(1 for _ in iter(transactions))
        abs_support = resolve_min_support(min_support, n_transactions)
        rank_table = RankTable.from_supports(supports, min_support=abs_support, order=order)
        # Scan 2: encode, aggregate.
        vectors: Counter = Counter()
        for t in transactions:
            ranks = rank_table.encode_itemset(t, skip_unknown=True)
            if ranks:
                vectors[position.encode(ranks)] += 1
        return cls(
            rank_table,
            vectors,
            min_support=abs_support,
            n_transactions=n_transactions,
        )

    @classmethod
    def from_weighted_transactions(
        cls,
        weighted: Iterable[tuple[Iterable[Item], int]],
        min_support: float | int,
        *,
        order: str = "lexicographic",
    ) -> "PLT":
        """Algorithm 1 over ``(transaction, weight)`` pairs.

        Aggregated inputs (e.g. a sales table listing each basket with a
        count) build directly — the vector table's frequencies *are* the
        weights, so a weight of a million costs the same as a weight of
        one.  Supports, ``n_transactions`` and relative thresholds are
        all in weight units.  Mining the result with any PLT algorithm
        gives exactly the result of mining the expanded multiset.
        """
        pairs = [(frozenset(t), int(w)) for t, w in weighted]
        for _, w in pairs:
            if w < 1:
                raise InvalidSupportError(f"transaction weights must be >= 1, got {w}")
        supports: Counter = Counter()
        for t, w in pairs:
            for item in t:
                supports[item] += w
        n_transactions = sum(w for _, w in pairs)
        abs_support = resolve_min_support(min_support, max(n_transactions, 1))
        rank_table = RankTable.from_supports(supports, min_support=abs_support, order=order)
        vectors: Counter = Counter()
        for t, w in pairs:
            ranks = rank_table.encode_itemset(t, skip_unknown=True)
            if ranks:
                vectors[position.encode(ranks)] += w
        return cls(
            rank_table,
            vectors,
            min_support=abs_support,
            n_transactions=n_transactions,
        )

    @classmethod
    def from_vectors(
        cls,
        rank_table: RankTable,
        vectors: Mapping[PositionVector, int],
        *,
        min_support: int,
        n_transactions: int | None = None,
    ) -> "PLT":
        """Wrap pre-encoded vectors (conditional PLTs, codecs, tests)."""
        if n_transactions is None:
            n_transactions = sum(vectors.values())
        return cls(
            rank_table, vectors, min_support=min_support, n_transactions=n_transactions
        )

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def partitions(self) -> dict[int, dict[PositionVector, int]]:
        """Length-partitioned vector table (Figure 3a). Do not mutate."""
        return self._partitions

    def partition(self, length: int) -> dict[PositionVector, int]:
        """The ``D_length`` partition (empty dict if absent)."""
        return self._partitions.get(length, {})

    def sum_index(self) -> dict[int, dict[PositionVector, int]]:
        """Vectors bucketed by their sum (= rank of their maximal item).

        Returns a *fresh, deep-copied* mapping because Algorithm 3 consumes
        and mutates it (buckets are popped and prefixes migrated).
        """
        return {s: dict(bucket) for s, bucket in self._sum_index.items()}

    def rank_path_index(self) -> dict[int, dict[RankPath, int]]:
        """Rank-path form of :meth:`sum_index` — the mining hot-path view.

        Maps ``max rank -> {rank path -> frequency}`` where each rank path
        is the cumulative-sum tuple of a stored vector (Lemma 4.1.1),
        computed once at construction.  The conditional miner works on this
        representation because the quantities Algorithm 3 recomputes per
        vector in delta form are all O(1) here: bucket key = ``path[-1]``,
        prefix's bucket key = ``path[-2]``, and local projection is a plain
        membership filter.

        Returns a fresh, deep-copied mapping (the miner consumes it).
        """
        return {s: dict(bucket) for s, bucket in self._rank_paths.items()}

    def iter_vectors(self) -> Iterator[tuple[PositionVector, int]]:
        """All (vector, frequency) pairs, longest partitions first."""
        for length in sorted(self._partitions, reverse=True):
            yield from self._partitions[length].items()

    def iter_rank_paths(self) -> Iterator[tuple[RankPath, int]]:
        """All (rank path, frequency) pairs, in sum-index bucket order.

        The paths are the precomputed cumulative-sum views of the stored
        vectors (same aggregation, so frequencies match
        :meth:`iter_vectors` pair-for-pair up to ordering).
        """
        for bucket in self._rank_paths.values():
            yield from bucket.items()

    def iter_rank_path_buckets(self) -> Iterator[tuple[int, dict[RankPath, int]]]:
        """``(max rank, bucket)`` pairs in *descending* key order.

        Zero-copy view over the interned rank-path index — the columnar
        lowering (:class:`repro.core.flat.FlatPLT`) walks it without paying
        the deep copy :meth:`rank_path_index` makes for the consuming
        miners.  Callers must not mutate the yielded buckets.
        """
        for key in sorted(self._rank_paths, reverse=True):
            yield key, self._rank_paths[key]

    def vectors(self) -> dict[PositionVector, int]:
        """Flat copy of the aggregated vector table."""
        return {vec: f for bucket in self._partitions.values() for vec, f in bucket.items()}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def n_vectors(self) -> int:
        return sum(len(b) for b in self._partitions.values())

    def max_length(self) -> int:
        return max(self._partitions, default=0)

    def max_rank(self) -> int:
        """Highest rank present in any stored vector."""
        return max(self._sum_index, default=0)

    def item_support(self, item: Item) -> int:
        """Support of a single frequent item, computed from the vectors."""
        rank = self.rank_table.rank(item)
        return self.rank_support(rank)

    def rank_support(self, rank: int) -> int:
        """Support of the item with the given rank.

        Scans the precomputed rank paths: membership of ``rank`` on a path
        is a C-speed tuple containment test instead of a per-vector prefix
        sum; buckets whose maximal rank is below ``rank`` are skipped
        entirely.
        """
        total = 0
        for max_rank, bucket in self._rank_paths.items():
            if max_rank < rank:
                continue
            for path, freq in bucket.items():
                if rank in path:
                    total += freq
        return total

    def support_of(self, itemset: Iterable[Item]) -> int:
        """Support of an arbitrary itemset via position-vector subset checks.

        This is the paper's "light subset checking" service: the query
        itemset is encoded once and tested against each stored vector with
        the O(k) two-pointer check — no per-transaction set construction.
        Items missing from the rank table are infrequent, hence the itemset
        support is below ``min_support``; we return its exact value anyway
        by reporting 0 only when the itemset cannot be encoded.
        """
        items = list(itemset)
        if not items:
            return self.n_transactions
        try:
            ranks = self.rank_table.encode_itemset(items)
        except UnknownItemError:
            return 0  # contains an infrequent (unranked) item
        query = position.encode(ranks)
        total = 0
        for length, bucket in self._partitions.items():
            if length < len(query):
                continue
            for vec, freq in bucket.items():
                if position.is_subvector(query, vec):
                    total += freq
        return total

    def stats(self) -> PLTStats:
        n_vec = self.n_vectors()
        n_enc = sum(f for b in self._partitions.values() for f in b.values())
        return PLTStats(
            n_transactions=self.n_transactions,
            n_encoded_transactions=n_enc,
            n_frequent_items=len(self.rank_table),
            n_vectors=n_vec,
            n_positions=sum(
                len(vec) for b in self._partitions.values() for vec in b
            ),
            max_vector_len=self.max_length(),
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"PLT(items={len(self.rank_table)}, vectors={self.n_vectors()}, "
            f"min_support={self.min_support}, transactions={self.n_transactions})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PLT):
            return NotImplemented
        return (
            self.rank_table == other.rank_table
            and self._partitions == other._partitions
            and self.min_support == other.min_support
            and self.n_transactions == other.n_transactions
        )


def build_plt(
    transactions: Iterable[Iterable[Item]],
    min_support: float | int,
    *,
    order: str = "lexicographic",
) -> PLT:
    """Functional alias for :meth:`PLT.from_transactions`."""
    return PLT.from_transactions(transactions, min_support, order=order)
