"""The paper's ``Rank`` function (Definition 4.1.1) as a bidirectional table.

``Rank`` maps each frequent item to a unique integer ``1..n`` so that a
chosen total order over items is preserved.  The paper mandates the
lexicographic order; correctness of every PLT operation only requires *some*
total order, so this module also offers support-based orders (ascending /
descending frequency) which are the standard FP-growth-era ablations — see
experiment B3/B4 in ``DESIGN.md``.

The table is the single authority for converting between user-facing item
labels and the contiguous internal ranks that position vectors are built
from.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any, Hashable

from repro.errors import RankTableError, UnknownItemError

__all__ = ["RankTable", "ORDER_POLICIES", "sort_key"]

Item = Hashable

#: Recognised ordering policies for :meth:`RankTable.from_supports`.
ORDER_POLICIES = ("lexicographic", "support_asc", "support_desc")


def sort_key(item: Any) -> tuple:
    """Total-order key for possibly mixed-type item labels.

    Items within one database usually share a type; when they do not
    (e.g. ints mixed with strings in a quick experiment), Python's ``<``
    raises ``TypeError``.  We therefore order first by type name and then by
    the value itself, falling back to ``repr`` for values of the same type
    that are still not comparable.
    """
    try:
        hash(item)
    except TypeError:  # pragma: no cover - items are declared Hashable
        raise
    return (type(item).__name__, _comparable(item))


class _ReprOrdered:
    """Wrapper giving any object a deterministic order via its repr."""

    __slots__ = ("value", "_repr")

    def __init__(self, value: Any) -> None:
        self.value = value
        self._repr = repr(value)

    def __lt__(self, other: "_ReprOrdered") -> bool:
        return self._repr < other._repr

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReprOrdered) and self._repr == other._repr

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(self._repr)


def _comparable(item: Any) -> Any:
    if isinstance(item, (int, float, str, bytes)):
        return item
    if isinstance(item, tuple):
        return tuple(_comparable(x) for x in item)
    return _ReprOrdered(item)


class RankTable:
    """Bidirectional map between item labels and ranks ``1..n``.

    Parameters
    ----------
    items_in_order:
        Item labels listed in the order that defines their ranks: the first
        item receives rank ``1``, the second rank ``2`` and so on.
    order:
        The name of the policy that produced the ordering (informational).

    The table is immutable after construction.
    """

    __slots__ = ("_item_to_rank", "_rank_to_item", "order")

    def __init__(self, items_in_order: Sequence[Item], order: str = "lexicographic"):
        rank_to_item = tuple(items_in_order)
        item_to_rank = {item: i + 1 for i, item in enumerate(rank_to_item)}
        if len(item_to_rank) != len(rank_to_item):
            raise RankTableError("duplicate items in rank order")
        self._rank_to_item = rank_to_item
        self._item_to_rank = item_to_rank
        self.order = order

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_supports(
        cls,
        supports: Mapping[Item, int],
        *,
        min_support: int = 1,
        order: str = "lexicographic",
    ) -> "RankTable":
        """Build a table over the items whose support meets ``min_support``.

        This is the first scan of Algorithm 1: infrequent items never enter
        the rank table and are therefore invisible to every later stage.
        """
        if order not in ORDER_POLICIES:
            raise RankTableError(
                f"unknown order policy {order!r}; expected one of {ORDER_POLICIES}"
            )
        frequent = [(item, sup) for item, sup in supports.items() if sup >= min_support]
        if order == "lexicographic":
            frequent.sort(key=lambda pair: sort_key(pair[0]))
        elif order == "support_asc":
            frequent.sort(key=lambda pair: (pair[1], sort_key(pair[0])))
        else:  # support_desc
            frequent.sort(key=lambda pair: (-pair[1], sort_key(pair[0])))
        return cls([item for item, _ in frequent], order=order)

    @classmethod
    def from_items(cls, items: Iterable[Item], *, order: str = "lexicographic") -> "RankTable":
        """Build a table over distinct ``items`` using the given policy.

        Only ``lexicographic`` makes sense without support information.
        """
        if order != "lexicographic":
            raise RankTableError("from_items only supports the lexicographic policy")
        distinct = sorted(set(items), key=sort_key)
        return cls(distinct, order=order)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def rank(self, item: Item) -> int:
        """Return ``Rank(item)`` (``1``-based)."""
        try:
            return self._item_to_rank[item]
        except KeyError:
            raise UnknownItemError(item) from None

    def item(self, rank: int) -> Item:
        """Inverse of :meth:`rank`."""
        if not 1 <= rank <= len(self._rank_to_item):
            raise UnknownItemError(rank)
        return self._rank_to_item[rank - 1]

    def __contains__(self, item: Item) -> bool:
        return item in self._item_to_rank

    def __len__(self) -> int:
        return len(self._rank_to_item)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RankTable) and self._rank_to_item == other._rank_to_item
        )

    def __hash__(self) -> int:
        return hash(self._rank_to_item)

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{item!r}:{i + 1}" for i, item in enumerate(self._rank_to_item[:6])
        )
        suffix = ", ..." if len(self) > 6 else ""
        return f"RankTable({preview}{suffix}; order={self.order!r})"

    # ------------------------------------------------------------------
    # bulk conversions
    # ------------------------------------------------------------------
    def items(self) -> tuple[Item, ...]:
        """All items in rank order (rank ``i`` item at index ``i - 1``)."""
        return self._rank_to_item

    def ranks(self) -> range:
        """The valid rank values ``1..n``."""
        return range(1, len(self._rank_to_item) + 1)

    def encode_itemset(self, itemset: Iterable[Item], *, skip_unknown: bool = False) -> tuple[int, ...]:
        """Map an itemset to its sorted tuple of ranks.

        Duplicate items collapse (itemsets are sets).  With
        ``skip_unknown=True`` items absent from the table — i.e. infrequent
        items, exactly what scan 2 of Algorithm 1 filters — are dropped
        silently; otherwise they raise :class:`UnknownItemError`.
        """
        table = self._item_to_rank
        if skip_unknown:
            ranks = {table[i] for i in itemset if i in table}
        else:
            try:
                ranks = {table[i] for i in itemset}
            except KeyError as exc:
                raise UnknownItemError(exc.args[0]) from None
        return tuple(sorted(ranks))

    def decode_ranks(self, ranks: Iterable[int]) -> tuple[Item, ...]:
        """Map a rank tuple back to item labels (in the same order)."""
        return tuple(self.item(r) for r in ranks)
