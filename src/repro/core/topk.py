"""Top-k frequent-itemset mining over the PLT.

Choosing ``min_support`` is the classic usability problem: too high finds
nothing, too low explodes.  Top-k mining (Han et al.'s TFP line of work)
inverts the interface: *give me the k most frequent itemsets of at least
``min_len`` items*, and the threshold is discovered.

The implementation runs the paper's conditional recursion with a
**dynamically rising threshold**: a size-``k`` min-heap of the best
supports seen so far; once the heap is full, its minimum becomes the
effective ``min_support``, pruning exactly like a user-supplied value
(support is anti-monotone, so a branch whose extension support is below
the floor can never contribute).  The heap is seeded with the exact item
supports and top-level branches are explored in descending support order,
so the floor is tight almost immediately.  Output is exact (tests compare
against mining at the discovered threshold).

Practical limit: while fewer than ``k`` itemsets have been observed the
floor is 1, so very large ``k`` (beyond the count of clearly-frequent
itemsets) degenerates towards support-1 mining.  ``k`` up to a few
thousand is the intended regime — beyond that, mine at an explicit low
threshold instead.
"""

from __future__ import annotations

import heapq

from repro.core.conditional import _consume_bucket, build_conditional_buckets
from repro.core.plt import PLT
from repro.errors import InvalidSupportError

__all__ = ["mine_top_k"]


def mine_top_k(
    plt: PLT,
    k: int,
    *,
    min_len: int = 1,
    max_len: int | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """The ``k`` highest-support itemsets with ``min_len <= size``.

    Ties at the cut-off support are all included, so the result may
    exceed ``k`` (the standard convention: the result is exactly every
    itemset with support >= the k-th best support).  Returns
    ``(sorted_ranks, support)`` pairs, highest support first.
    """
    if k < 1:
        raise InvalidSupportError(f"k must be >= 1, got {k}")
    if min_len < 1:
        raise InvalidSupportError(f"min_len must be >= 1, got {min_len}")
    if max_len is not None and max_len < min_len:
        raise InvalidSupportError("max_len must be >= min_len")

    heap: list[int] = []  # min-heap of the best k supports seen

    def floor() -> int:
        return heap[0] if len(heap) >= k else 1

    def observe(support: int) -> None:
        if len(heap) < k:
            heapq.heappush(heap, support)
        elif support > heap[0]:
            heapq.heapreplace(heap, support)

    # The top level is decoupled from the rank-descending migration order
    # by running the sweep first (conditional_tasks): every item's exact
    # support and complete conditional database, independent tasks.  Two
    # TFP-style accelerations follow:
    #
    # * with min_len == 1, item supports seed the heap so the floor starts
    #   high instead of at 1 (the seeds account for every size-1 itemset
    #   exactly once — the recursion must not observe them again);
    # * tasks are processed in *descending support* order, so the heap
    #   fills from the heaviest branches first and low-support subtrees
    #   are pruned wholesale by the risen floor.
    from repro.parallel.partitioner import conditional_tasks

    tasks = conditional_tasks(plt, 1)
    seeded = min_len == 1
    if seeded:
        for task in tasks:
            observe(task.support)

    collected: list[tuple[tuple[int, ...], int]] = []

    def mine(buckets, suffix) -> None:
        for j in range(max(buckets, default=0), 0, -1):
            bucket = buckets.pop(j, None)
            if bucket is None:
                continue
            cd, support = _consume_bucket(bucket, buckets)
            if support < floor():
                continue
            itemset = suffix + (j,)
            if len(itemset) >= min_len:
                observe(support)
                collected.append((tuple(sorted(itemset)), support))
            if cd and (max_len is None or len(itemset) < max_len):
                sub = build_conditional_buckets(cd, floor())
                if sub:
                    mine(sub, itemset)

    for task in sorted(tasks, key=lambda t: -t.support):
        if task.support < floor():
            continue  # no itemset below this task can reach the cut
        if min_len <= 1:
            collected.append(((task.rank,), task.support))
        if task.prefixes and (max_len is None or max_len > 1):
            sub = build_conditional_buckets(task.prefixes, floor())
            if sub:
                mine(sub, (task.rank,))
    cutoff = floor() if len(heap) >= k else 1
    result = [(ranks, s) for ranks, s in collected if s >= cutoff]
    result.sort(key=lambda pair: (-pair[1], len(pair[0]), pair[0]))
    return result
