"""Sliding-window frequent-itemset mining over a transaction stream.

Built on :class:`~repro.core.incremental.IncrementalPLT`: the window
holds the most recent ``capacity`` transactions; pushing a transaction
past capacity evicts (and un-counts) the oldest.  Mining always reflects
exactly the current window — the semantics monitoring applications
(fraud patterns over the last N events, trending page sets over the last
N sessions) need.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.core.conditional import mine_conditional
from repro.core.incremental import IncrementalPLT
from repro.core.plt import PLT
from repro.errors import InvalidSupportError

__all__ = ["SlidingWindowPLT"]

Item = Hashable


class SlidingWindowPLT:
    """A fixed-capacity transaction window with exact mining.

    >>> window = SlidingWindowPLT(capacity=2)
    >>> window.push({"a", "b"})
    >>> window.push({"a"})
    >>> evicted = window.push({"b"})
    >>> sorted(evicted)
    ['a', 'b']
    >>> [fi for fi in window.mine(1)]
    [(('a',), 1), (('b',), 1)]
    """

    __slots__ = ("capacity", "_window", "_structure")

    def __init__(self, capacity: int, transactions: Iterable[Iterable[Item]] = ()):
        if capacity < 1:
            raise InvalidSupportError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._window: deque[frozenset] = deque()
        self._structure = IncrementalPLT()
        for t in transactions:
            self.push(t)

    # ------------------------------------------------------------------
    def push(self, transaction: Iterable[Item]) -> frozenset | None:
        """Insert a transaction; returns the evicted one (or None)."""
        t = frozenset(transaction)
        evicted = None
        if len(self._window) == self.capacity:
            evicted = self._window.popleft()
            self._structure.remove_transaction(evicted)
        self._window.append(t)
        self._structure.add_transaction(t)
        return evicted

    def extend(self, transactions: Iterable[Iterable[Item]]) -> None:
        for t in transactions:
            self.push(t)

    def __len__(self) -> int:
        return len(self._window)

    def contents(self) -> tuple[frozenset, ...]:
        """The window's transactions, oldest first."""
        return tuple(self._window)

    def is_full(self) -> bool:
        return len(self._window) == self.capacity

    # ------------------------------------------------------------------
    def snapshot(self, min_support: float | int) -> PLT:
        """A mining-ready PLT of exactly the current window."""
        return self._structure.snapshot(min_support)

    def mine(
        self, min_support: float | int, *, max_len: int | None = None
    ) -> list[tuple[tuple[Item, ...], int]]:
        """Frequent itemsets of the current window, decoded to items.

        Returns ``(sorted item tuple, support)`` pairs in canonical order.
        """
        if not self._window:
            return []
        from repro.core.rank import sort_key

        plt = self.snapshot(min_support)
        table = plt.rank_table
        pairs = [
            (table.decode_ranks(ranks), support)
            for ranks, support in mine_conditional(plt, plt.min_support, max_len=max_len)
        ]
        pairs.sort(key=lambda p: (len(p[0]), [sort_key(i) for i in p[0]]))
        return pairs

    def __repr__(self) -> str:
        return (
            f"SlidingWindowPLT(capacity={self.capacity}, filled={len(self._window)})"
        )
