"""CRC-checksummed message framing for the simulated wire.

Every payload that crosses the (lossy) network travels inside a frame::

    magic    1 byte   0xA7
    kind     1 byte   DATA (1) or ACK (2)
    seq      uvarint  sender-scoped sequence number
    length   uvarint  payload byte count (0 for ACK)
    crc32    4 bytes  big-endian, over kind + seq + length + payload
    payload  length bytes

The CRC covers the header fields as well as the body, so a bit flip
anywhere in the frame (except a magic flip, caught separately) raises
:class:`~repro.errors.CodecError` instead of decoding to a wrong message.
CRC32 detects *all* single-byte errors, which is exactly the corruption
model :class:`~repro.parallel.faults.FaultPlan` injects; the reliable
channel treats an undecodable frame as a lost one (no ack → retransmit).
"""

from __future__ import annotations

import zlib
from typing import NamedTuple

from repro.compress.varint import decode_uvarint, encode_uvarint
from repro.errors import CodecError

__all__ = ["Frame", "DATA", "ACK", "encode_data", "encode_ack", "decode_frame", "MAGIC"]

MAGIC = 0xA7
DATA = 1
ACK = 2


class Frame(NamedTuple):
    kind: int
    seq: int
    payload: bytes


def _encode(kind: int, seq: int, payload: bytes) -> bytes:
    head = bytearray([kind])
    encode_uvarint(seq, head)
    encode_uvarint(len(payload), head)
    crc = zlib.crc32(bytes(head) + payload) & 0xFFFFFFFF
    return bytes([MAGIC]) + bytes(head) + crc.to_bytes(4, "big") + payload


def encode_data(seq: int, payload: bytes) -> bytes:
    """Frame an application payload for transmission."""
    if not isinstance(payload, (bytes, bytearray)):
        raise CodecError(f"frame payload must be bytes, got {type(payload).__name__}")
    return _encode(DATA, seq, bytes(payload))


def encode_ack(seq: int) -> bytes:
    """Frame an acknowledgement for data frame ``seq``."""
    return _encode(ACK, seq, b"")


def decode_frame(data: bytes) -> Frame:
    """Parse and verify one frame; raises :class:`CodecError` on any damage."""
    if len(data) < 2 or data[0] != MAGIC:
        raise CodecError("not a frame (bad magic)")
    kind = data[1]
    if kind not in (DATA, ACK):
        raise CodecError(f"unknown frame kind {kind}")
    pos = 1  # header-for-crc starts at the kind byte
    seq, end = decode_uvarint(data, pos + 1)
    length, end = decode_uvarint(data, end)
    if end + 4 + length != len(data):
        raise CodecError(
            f"frame length mismatch: header claims {length} payload bytes, "
            f"{len(data) - end - 4} present"
        )
    crc = int.from_bytes(data[end : end + 4], "big")
    payload = data[end + 4 :]
    expected = zlib.crc32(data[pos:end] + payload) & 0xFFFFFFFF
    if crc != expected:
        raise CodecError(f"frame CRC mismatch (got {crc:#010x}, want {expected:#010x})")
    if kind == ACK and length:
        raise CodecError("ACK frames carry no payload")
    return Frame(kind, seq, payload)
