"""Reliable, exactly-once message delivery over the lossy simulated wire.

The :class:`~repro.parallel.simcluster.SimCluster` network (under a
:class:`~repro.parallel.faults.FaultPlan`) may drop, duplicate, corrupt or
delay any frame.  :class:`ReliableChannel` restores the abstraction node
programs want — every payload handed to :meth:`send` is delivered to the
application layer of the destination exactly once, in bounded time, or the
destination is declared dead:

* every payload travels as a CRC-framed DATA frame carrying a
  sender-scoped sequence number (:mod:`repro.robustness.framing`);
* receivers ack every structurally valid DATA frame (including
  retransmits, whose acks may themselves have been lost) and deduplicate
  by ``(sender, seq)`` before delivering upward;
* undecodable frames are dropped silently — to the sender they look lost;
* senders retransmit unacked frames on the :class:`RetryPolicy` schedule
  (in supersteps; the minimum ack round-trip of 2 supersteps is added on
  top) and declare the peer **dead** after ``max_retries`` retransmits go
  unanswered.

Death detection is *eventually accurate*, not perfect: pathological loss
can declare a live peer dead.  The mining protocol layered on top is
idempotent per data-origin, so a false positive costs duplicated work,
never wrong results (see ``docs/FAULT_TOLERANCE.md``).
"""

from __future__ import annotations

import math

from repro.errors import CodecError
from repro.robustness.framing import ACK, DATA, decode_frame, encode_ack, encode_data
from repro.robustness.retry import RetryPolicy

__all__ = ["ReliableChannel", "DEFAULT_CHANNEL_RETRY", "ACK_RTT_SUPERSTEPS"]

#: Minimum supersteps before an ack can possibly arrive (deliver + reply).
ACK_RTT_SUPERSTEPS = 2

#: Default retransmit schedule: retries after 1, 2, 4 extra supersteps.
DEFAULT_CHANNEL_RETRY = RetryPolicy(max_retries=3, base_delay=1.0, multiplier=2.0, max_delay=4.0)


class _Pending:
    __slots__ = ("dest", "frame", "attempts", "due")

    def __init__(self, dest: int, frame: bytes, due: int):
        self.dest = dest
        self.frame = frame
        self.attempts = 0
        self.due = due


class ReliableChannel:
    """Ack/retransmit endpoint for one simulated node.

    Drive it once per superstep::

        delivered = channel.poll(ctx, superstep)   # acks + dedups inbox
        ... application logic, may call channel.send(ctx, superstep, ...)
        channel.flush(ctx, superstep)              # due retransmits
        for peer in channel.take_dead_peers(): ...
    """

    def __init__(self, node_id: int, *, retry: RetryPolicy | None = None):
        self.node_id = node_id
        self.retry = retry if retry is not None else DEFAULT_CHANNEL_RETRY
        self._next_seq = 0
        self._pending: dict[int, _Pending] = {}
        self._seen: dict[int, set[int]] = {}
        self._dead: set[int] = set()
        self._newly_dead: list[int] = []

    # -- sending ----------------------------------------------------------
    def send(self, ctx, superstep: int, dest: int, payload: bytes) -> None:
        """Queue ``payload`` for reliable delivery to ``dest``.

        Sends to peers already declared dead are discarded — the caller is
        expected to have rerouted their work.
        """
        if dest in self._dead:
            return
        seq = self._next_seq
        self._next_seq += 1
        frame = encode_data(seq, payload)
        ctx.send(dest, frame)
        due = superstep + ACK_RTT_SUPERSTEPS + self._backoff(seq, 1)
        self._pending[seq] = _Pending(dest, frame, due)

    def send_unreliable(self, ctx, dest: int, payload: bytes) -> None:
        """Fire-and-forget framed send (no ack tracking, works on dead peers).

        Used for best-effort hints, e.g. re-offering FIN to a peer that was
        (possibly falsely) declared dead.
        """
        seq = self._next_seq
        self._next_seq += 1
        ctx.send(dest, encode_data(seq, payload))

    def _backoff(self, seq: int, attempt: int) -> int:
        return max(0, math.ceil(self.retry.delay(attempt, key=str(seq))))

    # -- receiving --------------------------------------------------------
    def poll(self, ctx, superstep: int) -> list[tuple[int, bytes]]:
        """Process this superstep's inbox; returns newly delivered payloads.

        Acks valid DATA frames (retransmits included), strips duplicates,
        and silently discards frames the framing layer rejects.
        """
        delivered: list[tuple[int, bytes]] = []
        for src, raw in ctx.inbox():
            try:
                frame = decode_frame(raw)
            except CodecError:
                ctx.stats.rejected_frames += 1
                continue
            if frame.kind == ACK:
                pending = self._pending.get(frame.seq)
                if pending is not None and pending.dest == src:
                    del self._pending[frame.seq]
                continue
            assert frame.kind == DATA
            ctx.send(src, encode_ack(frame.seq))
            seen = self._seen.setdefault(src, set())
            if frame.seq in seen:
                continue
            seen.add(frame.seq)
            delivered.append((src, frame.payload))
        return delivered

    # -- retransmission & failure detection -------------------------------
    def flush(self, ctx, superstep: int) -> None:
        """Retransmit overdue frames; exhausting retries marks peers dead."""
        for seq in sorted(self._pending):
            pending = self._pending.get(seq)
            if pending is None:  # removed by mark_dead earlier in this sweep
                continue
            if pending.dest in self._dead:
                del self._pending[seq]
                continue
            if superstep < pending.due:
                continue
            if pending.attempts >= self.retry.max_retries:
                self.mark_dead(pending.dest)
                continue
            pending.attempts += 1
            ctx.send(pending.dest, pending.frame)
            ctx.stats.retransmits += 1
            pending.due = superstep + ACK_RTT_SUPERSTEPS + self._backoff(seq, pending.attempts + 1)

    def mark_dead(self, peer: int, *, quiet: bool = False) -> None:
        """Stop talking to ``peer``; drop everything queued for it.

        ``quiet`` suppresses the death *event* (the peer will not show up
        in :meth:`take_dead_peers`) — used when the caller learned of the
        death from the failover protocol rather than detecting it here.
        """
        if peer not in self._dead:
            self._dead.add(peer)
            if not quiet:
                self._newly_dead.append(peer)
        for seq in [s for s, p in self._pending.items() if p.dest == peer]:
            del self._pending[seq]

    def take_dead_peers(self) -> list[int]:
        """Peers newly declared dead since the last call (drains the list)."""
        out, self._newly_dead = self._newly_dead, []
        return out

    @property
    def dead_peers(self) -> frozenset[int]:
        return frozenset(self._dead)

    def idle(self) -> bool:
        """True when every sent frame has been acknowledged (or abandoned)."""
        return not self._pending

    def has_unacked(self, dest: int) -> bool:
        return any(p.dest == dest for p in self._pending.values())
