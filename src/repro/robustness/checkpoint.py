"""A model of stable storage that survives node crashes — real or simulated.

Real distributed miners keep their input splits and per-phase state on a
distributed filesystem or local disk; when a node dies its successor
re-reads that state and replays the lost work.  :class:`CheckpointStore`
is that stable storage, in one of two modes:

* **In-memory** (default, ``path=None``) — a blob store keyed by
  ``(node_id, key)`` that :class:`~repro.parallel.faults.FaultPlan` fault
  injection never touches.  This is the stand-in the
  :class:`~repro.parallel.simcluster.SimCluster` backend uses: node
  memory is the per-node ``state`` object (destroyed by a crash), stable
  storage is this store.
* **File-backed** (``path=<directory>``) — every key lives in its own
  file under ``path``, and *every read goes to disk*, so multiple real
  worker processes (the :class:`~repro.parallel.processcluster.ProcessCluster`
  backend) share one durable store: a successor process can replay a
  SIGKILLed worker's checkpoints.

Blobs are required to be ``bytes``: checkpointing is serialization, and
keeping the wire/storage representations identical means the same codecs
(and the same fuzz tests) cover both.

Crash-atomic writes
-------------------
A worker can be killed *mid-write*.  File-backed saves therefore never
touch the current generation in place: the new chain is written to a
temporary file in the same directory, flushed and ``fsync``'d, and then
atomically ``os.replace``'d over the real file (the directory is fsync'd
afterwards so the rename itself is durable).  A crash at any point leaves
either the complete old contents or the complete new contents — never a
torn current generation.  Orphaned ``*.tmp.*`` files from a crashed
writer are invisible to readers and overwritten/ignored thereafter.

Corruption recovery
-------------------
Disk is not incorruptible either: flipped bits are exactly the failure a
checkpoint must survive, not propagate.  Every blob is therefore stored
inside the same CRC frame the wire uses
(:mod:`~repro.robustness.framing`, sequence number = write generation),
and the store keeps the last :data:`GENERATIONS` generations per key
(length-prefixed records, newest first, in file-backed mode).  A read
verifies the newest frame first; if the CRC rejects it the store counts
it (``corruption_detected``) and falls back to the previous good
generation (``fallback_reads``).  Only when *every* kept generation is
damaged does :meth:`load` raise :class:`~repro.errors.CheckpointError`;
:meth:`get` returns ``None``, which consumers treat as "recompute from
durable input" — degraded, never wrong.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from urllib.parse import quote, unquote

from repro.errors import CheckpointError, CodecError
from repro.robustness.framing import decode_frame, encode_data

__all__ = ["CheckpointStore", "GENERATIONS"]

#: Checkpoint generations kept per key (newest + one fallback).
GENERATIONS = 2

#: Length prefix for each framed generation record in a chain file.
_RECORD_LEN = struct.Struct(">I")


class CheckpointStore:
    """Durable ``(node_id, key) -> bytes`` storage with access counters.

    Values are CRC-framed; reads verify and silently fall back to the
    previous generation on damage.  With ``path`` set, blobs persist to
    that directory with crash-atomic writes and are shared by every
    store instance (and every process) opened on the same directory;
    the access counters are always per-instance.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        # (node_id, key) -> newest-first list of framed generations
        self._blobs: dict[tuple[int, str], list[bytes]] = {}
        self._generation = 0
        self.writes = 0
        self.reads = 0
        self.corruption_detected = 0
        self.fallback_reads = 0

    # -- file-backed helpers ----------------------------------------------
    def _file(self, node_id: int, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{node_id}__{quote(str(key), safe='')}.ckpt"

    @staticmethod
    def _parse_records(data: bytes) -> list[bytes]:
        """Split a chain file into framed generation records (tolerant)."""
        records: list[bytes] = []
        pos = 0
        while pos + _RECORD_LEN.size <= len(data):
            (length,) = _RECORD_LEN.unpack_from(data, pos)
            pos += _RECORD_LEN.size
            if length > len(data) - pos:
                break  # torn tail: the CRC layer already covers the rest
            records.append(data[pos : pos + length])
            pos += length
        return records

    def _read_records(self, node_id: int, key: str) -> list[bytes] | None:
        """The stored generation chain, or ``None`` when the key is absent."""
        if self.path is None:
            return self._blobs.get((node_id, key))
        target = self._file(node_id, key)
        try:
            data = target.read_bytes()
        except FileNotFoundError:
            return None
        return self._parse_records(data)

    def _write_records(self, node_id: int, key: str, chain: list[bytes]) -> None:
        """Atomically replace the chain file: tmp + fsync + ``os.replace``."""
        target = self._file(node_id, key)
        data = b"".join(_RECORD_LEN.pack(len(rec)) + rec for rec in chain)
        tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        dir_fd = os.open(self.path, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    # -- public API --------------------------------------------------------
    def save(self, node_id: int, key: str, blob: bytes) -> None:
        """Overwrite the checkpoint ``key`` for ``node_id`` (crash-atomic)."""
        if not isinstance(blob, (bytes, bytearray)):
            raise CheckpointError(
                f"checkpoints must be serialized to bytes, got {type(blob).__name__}"
            )
        self._generation += 1
        framed = encode_data(self._generation, bytes(blob))
        if self.path is None:
            chain = self._blobs.setdefault((node_id, key), [])
            chain.insert(0, framed)
            del chain[GENERATIONS:]
        else:
            old = self._read_records(node_id, key) or []
            self._write_records(node_id, key, [framed] + old[: GENERATIONS - 1])
        self.writes += 1

    def _read_chain(self, node_id: int, key: str) -> bytes | None:
        """Newest verifiable generation, or ``None`` if all are damaged."""
        chain = self._read_records(node_id, key)
        if chain is None:
            return None
        for position, framed in enumerate(chain):
            try:
                frame = decode_frame(framed)
            except CodecError:
                self.corruption_detected += 1
                continue
            if position:
                self.fallback_reads += 1
            self.reads += 1
            return frame.payload
        return None

    def load(self, node_id: int, key: str) -> bytes:
        """Read a checkpoint; raises :class:`CheckpointError` if absent
        or damaged beyond the kept generations."""
        chain = self._read_records(node_id, key)
        if chain is None:
            raise CheckpointError(f"no checkpoint {key!r} for node {node_id}")
        payload = self._read_chain(node_id, key)
        if payload is None:
            raise CheckpointError(
                f"checkpoint {key!r} for node {node_id} is corrupt in all "
                f"{len(chain)} kept generations"
            )
        return payload

    def get(self, node_id: int, key: str) -> bytes | None:
        """Read a checkpoint, or ``None`` if absent or unrecoverable.

        ``None`` on total corruption is deliberate: every consumer treats
        a missing checkpoint as "recompute from the durable partition",
        so damage degrades to replay instead of surfacing wrong bytes.
        """
        return self._read_chain(node_id, key)

    def has(self, node_id: int, key: str) -> bool:
        if self.path is None:
            return (node_id, key) in self._blobs
        return self._file(node_id, key).exists()

    def keys(self) -> list[tuple[int, str]]:
        if self.path is None:
            return sorted(self._blobs)
        out: list[tuple[int, str]] = []
        for entry in self.path.glob("*.ckpt"):
            node_text, _, key_text = entry.name[: -len(".ckpt")].partition("__")
            try:
                out.append((int(node_text), unquote(key_text)))
            except ValueError:
                continue  # not one of ours
        return sorted(out)

    def inject_corruption(
        self, node_id: int, key: str, *, generation: int = 0, flip_byte: int = -5
    ) -> None:
        """Flip one byte of a stored generation (test hook).

        ``generation`` indexes newest-first; ``flip_byte`` indexes into
        the framed bytes (default lands in the payload/CRC region).
        """
        if self.path is None:
            chain = self._blobs[(node_id, key)]
            framed = bytearray(chain[generation])
            framed[flip_byte] ^= 0xFF
            chain[generation] = bytes(framed)
            return
        chain = self._read_records(node_id, key)
        if chain is None:
            raise CheckpointError(f"no checkpoint {key!r} for node {node_id}")
        framed = bytearray(chain[generation])
        framed[flip_byte] ^= 0xFF
        chain[generation] = bytes(framed)
        self._write_records(node_id, key, chain)

    def __len__(self) -> int:
        if self.path is None:
            return len(self._blobs)
        return sum(1 for _ in self.path.glob("*.ckpt"))
