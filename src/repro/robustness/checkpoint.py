"""A model of stable storage that survives simulated node crashes.

Real distributed miners keep their input splits and per-phase state on a
distributed filesystem or local disk; when a node dies its successor
re-reads that state and replays the lost work.  The simulator models node
memory as the per-node ``state`` object (destroyed by a crash) and stable
storage as this :class:`CheckpointStore` — a blob store keyed by
``(node_id, key)`` that fault injection never touches.

Blobs are required to be ``bytes``: checkpointing is serialization, and
keeping the wire/storage representations identical means the same codecs
(and the same fuzz tests) cover both.

Corruption recovery
-------------------
Disk is not incorruptible either: truncated writes and flipped bits are
exactly the failure a checkpoint must survive, not propagate.  Every blob
is therefore stored inside the same CRC frame the wire uses
(:mod:`~repro.robustness.framing`, sequence number = write generation),
and the store keeps the last :data:`GENERATIONS` generations per key.  A
read verifies the newest frame first; if the CRC rejects it — a torn or
corrupted write — the store counts it (``corruption_detected``) and falls
back to the previous good generation (``fallback_reads``).  Only when
*every* kept generation is damaged does :meth:`load` raise
:class:`~repro.errors.CheckpointError`; :meth:`get` returns ``None``,
which consumers treat as "recompute from durable input" — degraded, never
wrong.
"""

from __future__ import annotations

from repro.errors import CheckpointError, CodecError
from repro.robustness.framing import decode_frame, encode_data

__all__ = ["CheckpointStore", "GENERATIONS"]

#: Checkpoint generations kept per key (newest + one fallback).
GENERATIONS = 2


class CheckpointStore:
    """Durable ``(node_id, key) -> bytes`` storage with access counters.

    Values are CRC-framed; reads verify and silently fall back to the
    previous generation on damage (see module docstring).
    """

    def __init__(self) -> None:
        # (node_id, key) -> newest-first list of framed generations
        self._blobs: dict[tuple[int, str], list[bytes]] = {}
        self._generation = 0
        self.writes = 0
        self.reads = 0
        self.corruption_detected = 0
        self.fallback_reads = 0

    def save(self, node_id: int, key: str, blob: bytes) -> None:
        """Overwrite the checkpoint ``key`` for ``node_id``."""
        if not isinstance(blob, (bytes, bytearray)):
            raise CheckpointError(
                f"checkpoints must be serialized to bytes, got {type(blob).__name__}"
            )
        self._generation += 1
        framed = encode_data(self._generation, bytes(blob))
        chain = self._blobs.setdefault((node_id, key), [])
        chain.insert(0, framed)
        del chain[GENERATIONS:]
        self.writes += 1

    def _read_chain(self, node_id: int, key: str) -> bytes | None:
        """Newest verifiable generation, or ``None`` if all are damaged."""
        chain = self._blobs[(node_id, key)]
        for position, framed in enumerate(chain):
            try:
                frame = decode_frame(framed)
            except CodecError:
                self.corruption_detected += 1
                continue
            if position:
                self.fallback_reads += 1
            self.reads += 1
            return frame.payload
        return None

    def load(self, node_id: int, key: str) -> bytes:
        """Read a checkpoint; raises :class:`CheckpointError` if absent
        or damaged beyond the kept generations."""
        if (node_id, key) not in self._blobs:
            raise CheckpointError(f"no checkpoint {key!r} for node {node_id}")
        payload = self._read_chain(node_id, key)
        if payload is None:
            raise CheckpointError(
                f"checkpoint {key!r} for node {node_id} is corrupt in all "
                f"{len(self._blobs[(node_id, key)])} kept generations"
            )
        return payload

    def get(self, node_id: int, key: str) -> bytes | None:
        """Read a checkpoint, or ``None`` if absent or unrecoverable.

        ``None`` on total corruption is deliberate: every consumer treats
        a missing checkpoint as "recompute from the durable partition",
        so damage degrades to replay instead of surfacing wrong bytes.
        """
        if (node_id, key) not in self._blobs:
            return None
        return self._read_chain(node_id, key)

    def has(self, node_id: int, key: str) -> bool:
        return (node_id, key) in self._blobs

    def keys(self) -> list[tuple[int, str]]:
        return sorted(self._blobs)

    def inject_corruption(
        self, node_id: int, key: str, *, generation: int = 0, flip_byte: int = -5
    ) -> None:
        """Flip one byte of a stored generation (test hook).

        ``generation`` indexes newest-first; ``flip_byte`` indexes into
        the framed bytes (default lands in the payload/CRC region).
        """
        chain = self._blobs[(node_id, key)]
        framed = bytearray(chain[generation])
        framed[flip_byte] ^= 0xFF
        chain[generation] = bytes(framed)

    def __len__(self) -> int:
        return len(self._blobs)
