"""A model of stable storage that survives simulated node crashes.

Real distributed miners keep their input splits and per-phase state on a
distributed filesystem or local disk; when a node dies its successor
re-reads that state and replays the lost work.  The simulator models node
memory as the per-node ``state`` object (destroyed by a crash) and stable
storage as this :class:`CheckpointStore` — a blob store keyed by
``(node_id, key)`` that fault injection never touches.

Blobs are required to be ``bytes``: checkpointing is serialization, and
keeping the wire/storage representations identical means the same codecs
(and the same fuzz tests) cover both.
"""

from __future__ import annotations

from repro.errors import CheckpointError

__all__ = ["CheckpointStore"]


class CheckpointStore:
    """Durable ``(node_id, key) -> bytes`` storage with access counters."""

    def __init__(self) -> None:
        self._blobs: dict[tuple[int, str], bytes] = {}
        self.writes = 0
        self.reads = 0

    def save(self, node_id: int, key: str, blob: bytes) -> None:
        """Overwrite the checkpoint ``key`` for ``node_id``."""
        if not isinstance(blob, (bytes, bytearray)):
            raise CheckpointError(
                f"checkpoints must be serialized to bytes, got {type(blob).__name__}"
            )
        self._blobs[(node_id, key)] = bytes(blob)
        self.writes += 1

    def load(self, node_id: int, key: str) -> bytes:
        """Read a checkpoint; raises :class:`CheckpointError` if absent."""
        try:
            blob = self._blobs[(node_id, key)]
        except KeyError:
            raise CheckpointError(f"no checkpoint {key!r} for node {node_id}") from None
        self.reads += 1
        return blob

    def get(self, node_id: int, key: str) -> bytes | None:
        """Read a checkpoint, or ``None`` if it was never written."""
        blob = self._blobs.get((node_id, key))
        if blob is not None:
            self.reads += 1
        return blob

    def has(self, node_id: int, key: str) -> bool:
        return (node_id, key) in self._blobs

    def keys(self) -> list[tuple[int, str]]:
        return sorted(self._blobs)

    def __len__(self) -> int:
        return len(self._blobs)
