"""Fault-tolerance building blocks shared by the parallel mining layers.

The paper's partitioning claim (§1, §5) is only useful in practice if the
partitioned mining survives the failures real clusters exhibit: lost and
corrupted messages, wedged workers, crashed nodes.  This package holds the
generic machinery — none of it knows anything about PLTs:

* :mod:`~repro.robustness.retry` — :class:`RetryPolicy`, deterministic
  exponential backoff with seeded jitter, shared by the wire protocol
  (delays in supersteps) and the multiprocessing executors (delays in
  seconds).
* :mod:`~repro.robustness.framing` — CRC-checksummed message frames with
  sequence numbers, so corruption is *detected* rather than decoded.
* :mod:`~repro.robustness.channel` — :class:`ReliableChannel`, an
  ack/retransmit exactly-once delivery layer over the lossy simulated
  network, with bounded retries and peer-death detection.
* :mod:`~repro.robustness.checkpoint` — :class:`CheckpointStore`, a model
  of stable storage that survives node crashes (the input partitions and
  per-phase node state live here, enabling failover replay).  Checkpoints
  are CRC-framed generations: corruption is detected on read and the
  previous good generation is served instead.
* :mod:`~repro.robustness.governor` — resource governance:
  :class:`MiningBudget` (deadline / itemset cap / memory cap),
  :class:`CancellationToken`, the :class:`ResourceGovernor` that the
  mining hot loops consult at amortized checkpoints, and
  :class:`DegradationPolicy` for falling back to bounded approximate
  answers.

The consumers are :mod:`repro.parallel.distributed` (resilient distributed
mining), :mod:`repro.parallel.executor` (hardened process pools), and —
for governance — every miner behind the
:func:`repro.core.mining.mine_frequent_itemsets` facade; the failure
model itself is injected by :mod:`repro.parallel.faults`.
"""

from repro.robustness.channel import ReliableChannel
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.framing import (
    ACK,
    DATA,
    Frame,
    decode_frame,
    encode_ack,
    encode_data,
)
from repro.robustness.governor import (
    CancellationToken,
    DegradationPolicy,
    MiningBudget,
    ResourceGovernor,
    estimate_conditional_memory,
    estimate_topdown_memory,
)
from repro.robustness.retry import RetryPolicy

__all__ = [
    "RetryPolicy",
    "Frame",
    "DATA",
    "ACK",
    "encode_data",
    "encode_ack",
    "decode_frame",
    "ReliableChannel",
    "CheckpointStore",
    "MiningBudget",
    "CancellationToken",
    "ResourceGovernor",
    "DegradationPolicy",
    "estimate_conditional_memory",
    "estimate_topdown_memory",
]
