"""Fault-tolerance building blocks shared by the parallel mining layers.

The paper's partitioning claim (§1, §5) is only useful in practice if the
partitioned mining survives the failures real clusters exhibit: lost and
corrupted messages, wedged workers, crashed nodes.  This package holds the
generic machinery — none of it knows anything about PLTs:

* :mod:`~repro.robustness.retry` — :class:`RetryPolicy`, deterministic
  exponential backoff with seeded jitter, shared by the wire protocol
  (delays in supersteps) and the multiprocessing executors (delays in
  seconds).
* :mod:`~repro.robustness.framing` — CRC-checksummed message frames with
  sequence numbers, so corruption is *detected* rather than decoded.
* :mod:`~repro.robustness.channel` — :class:`ReliableChannel`, an
  ack/retransmit exactly-once delivery layer over the lossy simulated
  network, with bounded retries and peer-death detection.
* :mod:`~repro.robustness.checkpoint` — :class:`CheckpointStore`, a model
  of stable storage that survives node crashes (the input partitions and
  per-phase node state live here, enabling failover replay).

The consumers are :mod:`repro.parallel.distributed` (resilient distributed
mining) and :mod:`repro.parallel.executor` (hardened process pools); the
failure model itself is injected by :mod:`repro.parallel.faults`.
"""

from repro.robustness.channel import ReliableChannel
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.framing import (
    ACK,
    DATA,
    Frame,
    decode_frame,
    encode_ack,
    encode_data,
)
from repro.robustness.retry import RetryPolicy

__all__ = [
    "RetryPolicy",
    "Frame",
    "DATA",
    "ACK",
    "encode_data",
    "encode_ack",
    "decode_frame",
    "ReliableChannel",
    "CheckpointStore",
]
