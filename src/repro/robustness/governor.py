"""Resource governance for mining runs: budgets, cancellation, admission.

The ROADMAP's production posture means no mining request may pin a worker
indefinitely: a single dense low-support query can otherwise burn CPU and
memory until the process is killed.  This module is the shared defence,
threaded through every miner in the repo (conditional, top-down,
parallel, distributed, out-of-core):

* :class:`MiningBudget` — declarative limits: a wall-clock **deadline**,
  an emitted **itemset cap**, and an estimated **memory cap**.
* :class:`CancellationToken` — cooperative, thread-safe cancellation a
  caller can flip mid-flight (e.g. the user disconnected).
* :class:`ResourceGovernor` — the runtime object the mining hot loops
  call.  Checks are **amortized**: the loops call :meth:`~ResourceGovernor.tick`
  with a work amount, and only every ``check_interval`` accumulated units
  does the governor read the clock / sample allocations, so governance
  costs a counter decrement on the hot path and nothing at all when no
  governor is passed.
* :class:`DegradationPolicy` — what the facade should do instead of a
  partial answer when the budget is blown: fall back to a bounded
  **approximate** miner (a scaled sample, or exact top-k) with an
  explicit accuracy disclaimer.

On a limit trip the governor raises :class:`~repro.errors.BudgetExceeded`
or :class:`~repro.errors.Cancelled`; the miner catches it at its driver
level, attaches the itemsets mined so far (all with exact supports) plus
completion markers, and re-raises.  The facade converts that into a
:class:`~repro.core.mining.PartialResult` or degrades per the policy.

Admission control runs *before* mining: :meth:`ResourceGovernor.admit`
compares cheap structural estimates (in the spirit of
:func:`repro.core.topdown.estimate_topdown_work`) against the memory
budget and raises :class:`~repro.errors.AdmissionRejected` for requests
that cannot fit, so hopeless work is refused instead of started.

Memory accounting note: exact live-set tracking would cost more than the
mining itself, so the runtime check uses ``sys.getallocatedblocks()``
deltas scaled by a rough bytes-per-block constant.  It is an *estimate*,
deliberately biased to trip early rather than late; treat the cap as an
order-of-magnitude guard, not an rlimit.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    AdmissionRejected,
    BudgetExceeded,
    Cancelled,
    InvalidParameterError,
)

__all__ = [
    "MiningBudget",
    "CancellationToken",
    "ResourceGovernor",
    "DegradationPolicy",
    "estimate_conditional_memory",
    "estimate_topdown_memory",
    "DEFAULT_CHECK_INTERVAL",
]

#: Work units (emitted itemsets + merged bucket entries) between real
#: clock/memory checks.  Small enough that a 0.5 s deadline is honoured
#: within a few milliseconds on any workload dense enough to matter.
DEFAULT_CHECK_INTERVAL = 256

#: Rough average size of one CPython small-object allocator block; used
#: to convert ``sys.getallocatedblocks()`` deltas into byte estimates.
_BYTES_PER_BLOCK = 64

#: Estimated resident bytes per live work cell (a rank inside a path
#: tuple plus its share of dict overhead) in the conditional engine.
_BYTES_PER_COND_CELL = 120

#: Estimated resident bytes per generated subset entry (packed-bytes key
#: plus dict slot) in the top-down engine.
_BYTES_PER_SUBSET = 90


def _allocated_blocks() -> int:
    getter = getattr(sys, "getallocatedblocks", None)
    return getter() if getter is not None else 0


@dataclass(frozen=True)
class MiningBudget:
    """Declarative resource limits for one mining run.

    ``deadline`` is wall-clock seconds from :meth:`ResourceGovernor.start`;
    ``max_itemsets`` caps the number of *emitted* itemsets;
    ``memory_budget`` caps estimated bytes allocated since start.  Any
    field left ``None`` is unlimited.  ``check_interval`` tunes the
    amortization of the real checks.
    """

    deadline: float | None = None
    max_itemsets: int | None = None
    memory_budget: int | None = None
    check_interval: int = DEFAULT_CHECK_INTERVAL

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise InvalidParameterError(f"deadline must be > 0, got {self.deadline}")
        if self.max_itemsets is not None and self.max_itemsets < 1:
            raise InvalidParameterError(
                f"max_itemsets must be >= 1, got {self.max_itemsets}"
            )
        if self.memory_budget is not None and self.memory_budget < 1:
            raise InvalidParameterError(
                f"memory_budget must be >= 1 byte, got {self.memory_budget}"
            )
        if self.check_interval < 1:
            raise InvalidParameterError(
                f"check_interval must be >= 1, got {self.check_interval}"
            )

    def unlimited(self) -> bool:
        """True when no axis is constrained (governance is a no-op)."""
        return (
            self.deadline is None
            and self.max_itemsets is None
            and self.memory_budget is None
        )

    def with_deadline(self, deadline: float | None) -> "MiningBudget":
        """A copy with ``deadline`` replaced (used to ship *remaining*
        time to worker processes)."""
        return MiningBudget(
            deadline=deadline,
            max_itemsets=self.max_itemsets,
            memory_budget=self.memory_budget,
            check_interval=self.check_interval,
        )

    def clamp(
        self,
        *,
        deadline_cap: float | None = None,
        itemset_cap: int | None = None,
        memory_cap: int | None = None,
    ) -> "MiningBudget":
        """A copy with each axis bounded by a server-side cap.

        ``None`` caps leave the axis alone; a ``None`` axis with a cap set
        takes the cap (an unbounded *request* must not defeat a bounded
        *server*).  The serving daemon's admission control uses this to
        fold per-query client budgets into its own operator-set limits.
        """

        def cap_axis(value, cap):
            if cap is None:
                return value
            if value is None:
                return cap
            return min(value, cap)

        return MiningBudget(
            deadline=cap_axis(self.deadline, deadline_cap),
            max_itemsets=cap_axis(self.max_itemsets, itemset_cap),
            memory_budget=cap_axis(self.memory_budget, memory_cap),
            check_interval=self.check_interval,
        )


class CancellationToken:
    """Thread-safe cooperative cancellation flag.

    Create one, hand it to a governed mining call, and flip it from any
    thread with :meth:`cancel`; the mining loop observes it at its next
    amortized checkpoint and unwinds with
    :class:`~repro.errors.Cancelled`.

    Tokens do not cross process boundaries — the multiprocessing
    executors poll the token on the *driver* side between result waits
    and terminate the pool on cancellation.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cancellation (idempotent; first reason wins)."""
        if not self._event.is_set():
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise Cancelled(
                f"mining cancelled: {self.reason}", reason="cancelled"
            )

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self.cancelled else "armed"
        return f"CancellationToken({state})"


@dataclass(frozen=True)
class DegradationPolicy:
    """What to return instead of a partial answer when the budget blows.

    ``fallback``:

    * ``"sampling"`` — mine a ``sample_fraction`` random sample of the
      database exactly, scale supports back up.  Fast and bounded; the
      reported supports are **estimates**.
    * ``"topk"`` — run the exact top-``k`` miner.  Supports are exact but
      only the ``k`` most frequent itemsets are returned.
    * ``"sketch"`` — one fixed-memory pass through the transactions with
      a :class:`~repro.stream.summary.StreamSummary` (conservative
      count-min + space-saving heavy hitters over PLT ranks).  Supports
      are one-sided estimates (never below the true support, above it by
      at most ``epsilon * N`` w.p. ``>= 1 - delta``) and only 1- and
      2-itemsets are enumerated — but memory is bounded by ``epsilon``/
      ``hh_capacity`` alone, independent of the database, which is the
      mode to pick when the budget trip *was* memory.

    Either way the result is flagged ``approximate`` and carries a
    human-readable disclaimer — callers can never mistake a degraded
    answer for the full frequent set.
    """

    fallback: str = "sampling"
    sample_fraction: float = 0.1
    k: int = 200
    seed: int = 0
    epsilon: float = 0.005
    delta: float = 0.01
    hh_capacity: int = 256

    def __post_init__(self) -> None:
        if self.fallback not in ("sampling", "topk", "sketch"):
            raise InvalidParameterError(
                f"unknown degradation fallback {self.fallback!r}; "
                "expected 'sampling', 'topk' or 'sketch'"
            )
        if not 0 < self.sample_fraction <= 1:
            raise InvalidParameterError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        if self.k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {self.k}")
        if not 0 < self.epsilon < 1:
            raise InvalidParameterError(
                f"epsilon must be in (0, 1), got {self.epsilon}"
            )
        if not 0 < self.delta < 1:
            raise InvalidParameterError(f"delta must be in (0, 1), got {self.delta}")
        if self.hh_capacity < 1:
            raise InvalidParameterError(
                f"hh_capacity must be >= 1, got {self.hh_capacity}"
            )


def estimate_conditional_memory(plt) -> int:
    """Rough peak-bytes estimate for conditional (Algorithm 3) mining.

    Resident state is the rank-path table plus migrated prefixes (each
    strictly shorter than its source), so the stored cell count times a
    per-cell constant bounds the order of magnitude.
    """
    cells = 0
    n_vectors = 0
    for path, _freq in plt.iter_rank_paths():
        cells += len(path)
        n_vectors += 1
    return cells * _BYTES_PER_COND_CELL + n_vectors * 80


def estimate_topdown_memory(plt) -> int:
    """Rough peak-bytes estimate for top-down (Algorithm 2) mining.

    The top-down pass materialises every subset of every stored vector;
    :func:`~repro.core.topdown.estimate_topdown_work` bounds that count
    (saturating), and each entry costs roughly a packed key plus a dict
    slot.
    """
    from repro.core.topdown import WORK_ESTIMATE_CAP, estimate_topdown_work

    work = estimate_topdown_work(plt)
    if work >= WORK_ESTIMATE_CAP:
        return WORK_ESTIMATE_CAP
    return work * _BYTES_PER_SUBSET


class ResourceGovernor:
    """Runtime budget/cancellation enforcement for one mining run.

    Mining hot loops call :meth:`tick` (with a work amount) and
    :meth:`note_itemsets` (per emission); both are O(1) counter updates,
    and only every ``check_interval`` accumulated work units does the
    governor read the monotonic clock, sample the allocator, and test the
    cancellation token.  Loops additionally drop completion markers into
    :attr:`progress` (``mining_rank``, ``sweep_length``, ...) so the
    exception handler can report the verified-complete region.

    One governor instance governs one logical run; it may be shared
    across the in-process stages of that run (driver loop + conditional
    blocks) but not across concurrent runs.
    """

    __slots__ = (
        "budget",
        "cancel",
        "progress",
        "itemsets",
        "_interval",
        "_countdown",
        "_started_at",
        "_deadline_at",
        "_mem_base",
        "_max_itemsets",
    )

    def __init__(
        self,
        budget: MiningBudget | None = None,
        cancel: CancellationToken | None = None,
    ):
        self.budget = budget if budget is not None else MiningBudget()
        self.cancel = cancel
        self.progress: dict = {}
        self.itemsets = 0
        self._interval = self.budget.check_interval
        self._countdown = self._interval
        self._started_at: float | None = None
        self._deadline_at: float | None = None
        self._mem_base: int | None = None
        self._max_itemsets = self.budget.max_itemsets

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ResourceGovernor":
        """Arm the clocks; idempotent (first call wins, for shared use)."""
        if self._started_at is None:
            self._started_at = time.monotonic()
            if self.budget.deadline is not None:
                self._deadline_at = self._started_at + self.budget.deadline
            if self.budget.memory_budget is not None:
                self._mem_base = _allocated_blocks()
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def remaining_time(self) -> float | None:
        """Seconds left before the deadline, or ``None`` if unbounded."""
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - time.monotonic())

    def estimated_memory(self) -> int:
        """Estimated bytes allocated since :meth:`start` (see module note)."""
        if self._mem_base is None:
            return 0
        return max(0, _allocated_blocks() - self._mem_base) * _BYTES_PER_BLOCK

    # -- admission control -------------------------------------------------
    def admit(self, plt, *, method: str = "conditional") -> None:
        """Pre-reject a request whose estimated footprint cannot fit.

        ``method`` selects the estimator (``"conditional"`` or
        ``"topdown"``).  Only the memory axis is admission-checked — time
        cannot be estimated portably up front, so the deadline is
        enforced at runtime instead.
        """
        cap = self.budget.memory_budget
        if cap is None:
            return
        if method == "topdown":
            estimate = estimate_topdown_memory(plt)
        else:
            estimate = estimate_conditional_memory(plt)
        if estimate > cap:
            raise AdmissionRejected(
                f"admission control: estimated {method} mining footprint "
                f"~{estimate} bytes exceeds the {cap} byte memory budget; "
                "raise the budget, lower the workload, or set a "
                "DegradationPolicy",
                estimate=estimate,
                budget=cap,
            )

    # -- the hot-path hooks ------------------------------------------------
    def tick(self, work: int = 1) -> None:
        """Charge ``work`` units; every ``check_interval`` units, really check."""
        self._countdown -= work
        if self._countdown > 0:
            return
        self._check()

    def note_itemsets(self, n: int = 1) -> None:
        """Count emitted itemsets; the cap check is immediate (exact)."""
        self.itemsets += n
        if self._max_itemsets is not None and self.itemsets > self._max_itemsets:
            raise BudgetExceeded(
                f"itemset budget exhausted: more than {self._max_itemsets} "
                "frequent itemsets",
                reason="max_itemsets",
            )
        self.tick(n)

    def _check(self) -> None:
        self._countdown = self._interval
        if self.cancel is not None and self.cancel.cancelled:
            raise Cancelled(
                f"mining cancelled: {self.cancel.reason}", reason="cancelled"
            )
        if self._deadline_at is not None and time.monotonic() > self._deadline_at:
            raise BudgetExceeded(
                f"deadline of {self.budget.deadline}s exceeded "
                f"(elapsed {self.elapsed():.3f}s)",
                reason="deadline",
            )
        if self._mem_base is not None:
            used = self.estimated_memory()
            if used > self.budget.memory_budget:
                raise BudgetExceeded(
                    f"estimated memory {used} bytes exceeds the "
                    f"{self.budget.memory_budget} byte budget",
                    reason="memory",
                )

    def check_now(self) -> None:
        """Force an immediate real check (drivers call this between phases)."""
        self._check()

    def __repr__(self) -> str:
        return (
            f"ResourceGovernor(budget={self.budget!r}, itemsets={self.itemsets}, "
            f"elapsed={self.elapsed():.3f}s)"
        )
