"""Deterministic retry policies (exponential backoff + seeded jitter).

One policy object serves two clocks: the reliable channel schedules
retransmits in whole *supersteps* (it ceils the float delay), while the
multiprocessing executors sleep real *seconds* between pool retries.
Jitter is derived from ``random.Random`` seeded with a string key, so two
runs with the same seed produce byte-identical schedules — a requirement
for the reproducible chaos tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParallelExecutionError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff.

    ``delay(attempt)`` for attempt 1, 2, ... is
    ``min(base_delay * multiplier**(attempt-1), max_delay)`` plus a
    deterministic jitter term in ``[0, jitter * delay)``.

    >>> p = RetryPolicy(max_retries=3, base_delay=1.0, multiplier=2.0, max_delay=8.0)
    >>> [p.delay(a) for a in (1, 2, 3, 4, 5)]
    [1.0, 2.0, 4.0, 8.0, 8.0]
    """

    max_retries: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ParallelExecutionError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ParallelExecutionError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ParallelExecutionError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ParallelExecutionError("jitter must be in [0, 1]")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based).

        ``key`` names the thing being retried (a frame seq, a batch id) so
        distinct retries draw independent — but reproducible — jitter.
        """
        if attempt < 1:
            raise ParallelExecutionError("attempt is 1-based")
        base = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter and base:
            rng = random.Random(f"{self.seed}:{key}:{attempt}")
            base += base * self.jitter * rng.random()
        return base

    def delays(self, key: str = "") -> list[float]:
        """The full schedule: one delay per permitted retry."""
        return [self.delay(a, key) for a in range(1, self.max_retries + 1)]
