"""Additional synthetic workload generators.

Complements the Quest generator (:mod:`repro.data.quest`) with the other
data shapes the frequent-itemset literature distinguishes:

* :func:`generate_dense` — dense, highly-correlated data in the style of
  the UCI *mushroom* / *chess* datasets (few items, long fixed-length
  transactions, huge numbers of frequent itemsets).  This is the regime
  where the paper recommends the conditional approach.
* :func:`generate_zipf` — independent items with Zipf-distributed
  popularity, the standard "no structure" null model.
* :func:`generate_planted` — a market-basket generator with explicitly
  planted association rules of known support/confidence, used by the rule
  tests and the rules example (we know the ground truth by construction).
* :func:`generate_uniform` — i.i.d. uniform baskets (worst case for
  compression, used by the codec benchmarks).

All generators are deterministic given ``seed`` and return
:class:`~repro.data.transaction_db.TransactionDatabase`.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.data.transaction_db import TransactionDatabase
from repro.errors import DatasetError

__all__ = [
    "generate_dense",
    "generate_zipf",
    "generate_uniform",
    "generate_planted",
    "PlantedRule",
]


def generate_dense(
    n_transactions: int = 2000,
    n_items: int = 40,
    transaction_len: int = 15,
    *,
    n_clusters: int = 4,
    cluster_affinity: float = 0.8,
    seed: int = 0,
) -> TransactionDatabase:
    """Dense correlated data (mushroom/chess-like).

    Items are split into ``n_clusters`` groups; every transaction picks a
    home cluster and draws ``cluster_affinity`` of its items from it and the
    rest uniformly.  Fixed transaction length mimics the attribute-value
    encoding of the UCI dense sets (every record has one value per
    attribute).
    """
    if transaction_len > n_items:
        raise DatasetError("transaction_len cannot exceed n_items")
    if not 0 <= cluster_affinity <= 1:
        raise DatasetError("cluster_affinity must be in [0, 1]")
    if n_clusters < 1 or n_clusters > n_items:
        raise DatasetError("n_clusters must be in [1, n_items]")
    rng = random.Random(seed)
    clusters: list[list[int]] = [[] for _ in range(n_clusters)]
    for item in range(n_items):
        clusters[item % n_clusters].append(item)
    universe = list(range(n_items))
    transactions = []
    for _ in range(n_transactions):
        home = clusters[rng.randrange(n_clusters)]
        n_home = min(len(home), int(round(cluster_affinity * transaction_len)))
        basket = set(rng.sample(home, n_home))
        while len(basket) < transaction_len:
            basket.add(universe[rng.randrange(n_items)])
        transactions.append(basket)
    return TransactionDatabase(transactions)


def generate_zipf(
    n_transactions: int = 5000,
    n_items: int = 200,
    avg_transaction_len: float = 8.0,
    *,
    exponent: float = 1.2,
    seed: int = 0,
) -> TransactionDatabase:
    """Independent items with Zipf(``exponent``) popularity.

    There is no correlation structure, so frequent itemsets beyond
    singletons arise only from popularity co-occurrence — the null model
    against which planted structure is compared.
    """
    if exponent <= 0:
        raise DatasetError("exponent must be positive")
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** exponent for i in range(n_items)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    import bisect

    transactions = []
    for _ in range(n_transactions):
        # geometric-ish length with the requested mean, at least 1
        length = 1 + int(rng.expovariate(1.0 / max(avg_transaction_len - 1, 0.25)))
        basket: set[int] = set()
        guard = 0
        while len(basket) < length and guard < 20 * length:
            guard += 1
            basket.add(bisect.bisect(cumulative, rng.random()))
        transactions.append(basket)
    return TransactionDatabase(transactions)


def generate_uniform(
    n_transactions: int = 5000,
    n_items: int = 100,
    transaction_len: int = 8,
    *,
    seed: int = 0,
) -> TransactionDatabase:
    """i.i.d. uniform fixed-length baskets (no structure at all)."""
    if transaction_len > n_items:
        raise DatasetError("transaction_len cannot exceed n_items")
    rng = random.Random(seed)
    universe = list(range(n_items))
    return TransactionDatabase(
        rng.sample(universe, transaction_len) for _ in range(n_transactions)
    )


@dataclass(frozen=True)
class PlantedRule:
    """A ground-truth association rule to embed in generated data.

    ``support`` is the fraction of transactions receiving the
    *antecedent*; a ``confidence`` fraction of those also receives the
    consequent, so the rule's union support is approximately
    ``support * confidence`` (exactly, modulo rounding, when no other
    planted rule shares items).
    """

    antecedent: tuple
    consequent: tuple
    support: float
    confidence: float

    def validate(self) -> None:
        if not self.antecedent or not self.consequent:
            raise DatasetError("planted rule sides must be non-empty")
        if set(self.antecedent) & set(self.consequent):
            raise DatasetError("planted rule sides must be disjoint")
        if not 0 < self.support <= 1 or not 0 < self.confidence <= 1:
            raise DatasetError("support and confidence must be in (0, 1]")


def generate_planted(
    rules: Sequence[PlantedRule],
    n_transactions: int = 5000,
    n_noise_items: int = 50,
    avg_noise_len: float = 3.0,
    *,
    seed: int = 0,
) -> TransactionDatabase:
    """Baskets with explicitly planted rules plus independent noise items.

    For each rule, ``support * n_transactions`` transactions receive the
    antecedent; a ``confidence`` fraction of those also receives the
    consequent.  Noise items (labelled ``"n<i>"``) are sprinkled uniformly
    so that miners must separate signal from noise.
    """
    for rule in rules:
        rule.validate()
    rng = random.Random(seed)
    transactions: list[set] = [set() for _ in range(n_transactions)]
    for rule in rules:
        n_ante = int(round(rule.support * n_transactions))
        holders = rng.sample(range(n_transactions), n_ante)
        n_full = int(round(rule.confidence * n_ante))
        for idx, tid in enumerate(holders):
            transactions[tid].update(rule.antecedent)
            if idx < n_full:
                transactions[tid].update(rule.consequent)
    noise_items = [f"n{i}" for i in range(n_noise_items)]
    for basket in transactions:
        n_noise = int(rng.expovariate(1.0 / avg_noise_len)) if avg_noise_len > 0 else 0
        n_noise = min(n_noise, n_noise_items)
        basket.update(rng.sample(noise_items, n_noise))
        if not basket and noise_items:
            basket.add(noise_items[rng.randrange(n_noise_items)])
    return TransactionDatabase(transactions)
