"""Transactional-database substrate.

The paper's input model (Section 2): a multiset ``D`` of transactions, each
a set of items drawn from ``I``, identified by a TID.  This module provides
the in-memory representation every miner consumes, in both classic layouts:

* **horizontal** — TID -> set of items (the default; what Apriori,
  FP-growth, H-Mine and the PLT builders scan), and
* **vertical** — item -> set of TIDs (what Eclat/dEclat consume).

Transactions are stored deduplicated *per transaction* (itemsets, not
sequences) but the database itself is a multiset: identical transactions
are kept with their multiplicity, which is precisely what the PLT's
aggregated vectors exploit.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Hashable

from repro.core.rank import sort_key
from repro.errors import InvalidSupportError

__all__ = ["TransactionDatabase", "resolve_min_support", "item_supports"]

Item = Hashable
Transaction = frozenset


def item_supports(transactions: Iterable[Iterable[Item]]) -> Counter:
    """Count, for every item, the number of transactions containing it.

    This is scan 1 of Algorithm 1 (and of every other miner here).
    Duplicate items inside one transaction count once.
    """
    counts: Counter = Counter()
    for t in transactions:
        counts.update(set(t))
    return counts


def resolve_min_support(min_support: float | int, n_transactions: int) -> int:
    """Normalise a support threshold to an absolute transaction count.

    The paper (footnote 1) counts support in absolute transactions; user
    APIs conventionally accept a relative fraction as well.  Integers
    ``>= 1`` are absolute counts; floats in ``(0, 1]`` are fractions of the
    database size, rounded up (an itemset meeting the fraction exactly is
    frequent).
    """
    if isinstance(min_support, bool):
        raise InvalidSupportError(f"min_support must be numeric, got {min_support!r}")
    if isinstance(min_support, int):
        if min_support < 1:
            raise InvalidSupportError(
                f"absolute min_support must be >= 1, got {min_support}"
            )
        return min_support
    if isinstance(min_support, float):
        if not 0.0 < min_support <= 1.0:
            raise InvalidSupportError(
                f"relative min_support must be in (0, 1], got {min_support}"
            )
        import math

        # tiny epsilon so that e.g. 0.3 * 10 == 3.0000000000000004 still
        # resolves to 3 rather than 4
        count = math.ceil(min_support * n_transactions - 1e-9)
        return max(count, 1)
    raise InvalidSupportError(f"min_support must be int or float, got {min_support!r}")


class TransactionDatabase:
    """An immutable multiset of transactions with layout conversions.

    Parameters
    ----------
    transactions:
        Iterable of item collections.  Order of items within a transaction
        is irrelevant; duplicates inside a transaction collapse.
    """

    __slots__ = ("_transactions", "_item_supports")

    def __init__(self, transactions: Iterable[Iterable[Item]]):
        self._transactions: tuple[frozenset, ...] = tuple(
            frozenset(t) for t in transactions
        )
        self._item_supports: Counter | None = None

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._transactions)

    def __getitem__(self, tid: int) -> frozenset:
        return self._transactions[tid]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return Counter(self._transactions) == Counter(other._transactions)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(n_transactions={len(self)}, "
            f"n_items={len(self.items())})"
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def supports(self) -> Counter:
        """Item -> number of transactions containing it (cached)."""
        if self._item_supports is None:
            self._item_supports = item_supports(self._transactions)
        return self._item_supports

    def items(self) -> tuple[Item, ...]:
        """All distinct items, in the library's canonical sort order."""
        return tuple(sorted(self.supports(), key=sort_key))

    def n_items(self) -> int:
        return len(self.supports())

    def avg_transaction_length(self) -> float:
        if not self._transactions:
            return 0.0
        return sum(len(t) for t in self._transactions) / len(self._transactions)

    def max_transaction_length(self) -> int:
        return max((len(t) for t in self._transactions), default=0)

    def density(self) -> float:
        """Average transaction length divided by the number of items.

        ~1.0 for fully dense data (every item in every transaction), near 0
        for sparse market baskets.  Used by the benchmarks to label
        workloads.
        """
        n = self.n_items()
        return self.avg_transaction_length() / n if n else 0.0

    def frequent_items(self, min_support: float | int) -> dict[Item, int]:
        """Items meeting the threshold, with their supports."""
        count = resolve_min_support(min_support, len(self))
        return {i: s for i, s in self.supports().items() if s >= count}

    def support_of(self, itemset: Iterable[Item]) -> int:
        """Exact support of an arbitrary itemset by a full scan (oracle)."""
        target = frozenset(itemset)
        if not target:
            return len(self._transactions)
        return sum(1 for t in self._transactions if target <= t)

    # ------------------------------------------------------------------
    # layouts and derived databases
    # ------------------------------------------------------------------
    def aggregated(self) -> dict[frozenset, int]:
        """Distinct transactions with multiplicities (the PLT's raw input)."""
        return dict(Counter(self._transactions))

    def vertical(self) -> dict[Item, frozenset]:
        """Item -> frozenset of TIDs (the Eclat layout)."""
        tidsets: dict[Item, set[int]] = {}
        for tid, t in enumerate(self._transactions):
            for item in t:
                tidsets.setdefault(item, set()).add(tid)
        return {item: frozenset(tids) for item, tids in tidsets.items()}

    def filtered(self, min_support: float | int) -> "TransactionDatabase":
        """A copy with infrequent items removed and empty transactions kept.

        Keeping empties preserves ``len(db)`` so that relative supports stay
        comparable before/after filtering.
        """
        keep = set(self.frequent_items(min_support))
        return TransactionDatabase(t & keep for t in self._transactions)

    def without_empty(self) -> "TransactionDatabase":
        return TransactionDatabase(t for t in self._transactions if t)

    def relabelled(self, mapping: Mapping[Item, Item]) -> "TransactionDatabase":
        """Apply an item-renaming map (missing items keep their label)."""
        return TransactionDatabase(
            frozenset(mapping.get(i, i) for i in t) for t in self._transactions
        )

    def sample(self, n: int, *, seed: int = 0) -> "TransactionDatabase":
        """A reproducible random sample of ``n`` transactions (no replacement)."""
        import random

        if n >= len(self):
            return self
        rng = random.Random(seed)
        return TransactionDatabase(rng.sample(self._transactions, n))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sequences(cls, seqs: Sequence[Sequence[Item]]) -> "TransactionDatabase":
        """Alias constructor clarifying intent at call sites."""
        return cls(seqs)
