"""From-scratch IBM Quest synthetic market-basket generator.

This reimplements the synthetic-data procedure of Agrawal & Srikant,
*Fast Algorithms for Mining Association Rules* (VLDB 1994, Appendix) — the
generator behind the classic ``T10.I4.D100K`` workloads that the paper's
entire related-work lineage (Apriori, FP-growth, H-Mine, FIMI entries)
evaluates on.  The original binary is proprietary and long unavailable, so
this module is the substitution documented in DESIGN.md §2: same model,
deterministic seeding.

Model
-----
1. Draw ``n_patterns`` *maximal potentially large itemsets*.  Each has a
   length from a Poisson distribution with mean ``avg_pattern_len``; a
   fraction of its items (exponentially distributed with mean
   ``correlation``) is reused from the previous pattern, the rest drawn
   uniformly from the ``n_items`` universe.  Each pattern carries an
   exponentially distributed weight (normalised to a probability) and a
   *corruption level* drawn from N(``corruption_mean``, ``corruption_sd``)
   clipped to [0, 1].
2. Each transaction draws a length from Poisson(``avg_transaction_len``)
   and is filled by sampling patterns by weight.  Before insertion a
   pattern is *corrupted*: items are dropped while a uniform draw is below
   the pattern's corruption level.  A pattern that overflows the remaining
   space is inserted anyway in half the cases and deferred to the next
   transaction otherwise.

Naming helper: :func:`t_name` renders the classic ``T10.I4.D100K`` label.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.data.transaction_db import TransactionDatabase
from repro.errors import DatasetError

__all__ = ["QuestParameters", "QuestGenerator", "generate_quest", "t_name"]


@dataclass(frozen=True)
class QuestParameters:
    """Knobs of the Quest model, with the 1994 paper's defaults."""

    n_transactions: int = 10_000
    avg_transaction_len: float = 10.0  # |T|
    avg_pattern_len: float = 4.0  # |I|
    n_patterns: int = 500  # |L| (2000 in the paper; scaled with n_items)
    n_items: int = 1000  # N
    correlation: float = 0.5
    corruption_mean: float = 0.5
    corruption_sd: float = 0.1
    seed: int = 0

    def validate(self) -> None:
        if self.n_transactions < 0:
            raise DatasetError("n_transactions must be >= 0")
        if self.n_items < 1:
            raise DatasetError("n_items must be >= 1")
        if self.n_patterns < 1:
            raise DatasetError("n_patterns must be >= 1")
        if self.avg_transaction_len <= 0 or self.avg_pattern_len <= 0:
            raise DatasetError("average lengths must be positive")
        if not 0 <= self.correlation <= 1:
            raise DatasetError("correlation must be in [0, 1]")


@dataclass
class _Pattern:
    items: tuple[int, ...]
    weight: float
    corruption: float


class QuestGenerator:
    """Stateful generator; create once, call :meth:`generate`.

    The pattern table is drawn eagerly at construction so that several
    databases of different sizes can be generated from the same underlying
    "market behaviour" by calling :meth:`generate` repeatedly.
    """

    def __init__(self, params: QuestParameters):
        params.validate()
        self.params = params
        self._rng = random.Random(params.seed)
        self.patterns = self._draw_patterns()

    # ------------------------------------------------------------------
    def _poisson(self, mean: float) -> int:
        """Knuth's algorithm; mean values here are small (< 50)."""
        rng = self._rng
        threshold = math.exp(-mean)
        k = 0
        p = 1.0
        while True:
            p *= rng.random()
            if p <= threshold:
                return k
            k += 1

    def _draw_patterns(self) -> list[_Pattern]:
        p = self.params
        rng = self._rng
        patterns: list[_Pattern] = []
        prev: tuple[int, ...] = ()
        weights = [rng.expovariate(1.0) for _ in range(p.n_patterns)]
        total_w = sum(weights)
        for idx in range(p.n_patterns):
            length = max(1, self._poisson(p.avg_pattern_len))
            length = min(length, p.n_items)
            chosen: set[int] = set()
            if prev:
                # exponentially distributed reuse fraction, mean = correlation
                frac = min(1.0, rng.expovariate(1.0 / p.correlation) if p.correlation else 0.0)
                n_reuse = min(len(prev), int(round(frac * length)))
                chosen.update(rng.sample(prev, n_reuse))
            while len(chosen) < length:
                chosen.add(rng.randrange(p.n_items))
            items = tuple(sorted(chosen))
            corruption = min(1.0, max(0.0, rng.gauss(p.corruption_mean, p.corruption_sd)))
            patterns.append(_Pattern(items, weights[idx] / total_w, corruption))
            prev = items
        return patterns

    # ------------------------------------------------------------------
    def _corrupt(self, pattern: _Pattern) -> list[int]:
        """Drop items from the tail while the uniform draw stays below c."""
        items = list(pattern.items)
        rng = self._rng
        while len(items) > 1 and rng.random() < pattern.corruption:
            items.pop(rng.randrange(len(items)))
        return items

    def generate(self, n_transactions: int | None = None) -> TransactionDatabase:
        """Generate a database (``n_transactions`` overrides the params)."""
        p = self.params
        n = p.n_transactions if n_transactions is None else n_transactions
        rng = self._rng
        pattern_items = [pat.items for pat in self.patterns]
        cumulative: list[float] = []
        acc = 0.0
        for pat in self.patterns:
            acc += pat.weight
            cumulative.append(acc)

        import bisect

        def pick_pattern() -> _Pattern:
            return self.patterns[
                min(bisect.bisect(cumulative, rng.random() * acc), len(cumulative) - 1)
            ]

        transactions: list[set[int]] = []
        carried: list[int] | None = None
        for _ in range(n):
            size = max(1, self._poisson(p.avg_transaction_len))
            basket: set[int] = set()
            if carried is not None:
                basket.update(carried)
                carried = None
            guard = 0
            while len(basket) < size and guard < 50:
                guard += 1
                chunk = self._corrupt(pick_pattern())
                if len(basket) + len(chunk) > size and basket:
                    if rng.random() < 0.5:
                        basket.update(chunk)  # overflow accepted half the time
                    else:
                        carried = chunk  # deferred to the next transaction
                        break
                else:
                    basket.update(chunk)
            transactions.append(basket)
        return TransactionDatabase(transactions)


def generate_quest(**kwargs) -> TransactionDatabase:
    """One-shot convenience wrapper: ``generate_quest(n_transactions=..., ...)``."""
    return QuestGenerator(QuestParameters(**kwargs)).generate()


def t_name(params: QuestParameters) -> str:
    """Classic workload label, e.g. ``T10.I4.D10K.N1000``."""

    def fmt(x: float) -> str:
        return str(int(x)) if float(x).is_integer() else str(x)

    d = params.n_transactions
    dk = f"{d // 1000}K" if d % 1000 == 0 and d >= 1000 else str(d)
    return (
        f"T{fmt(params.avg_transaction_len)}.I{fmt(params.avg_pattern_len)}"
        f".D{dk}.N{params.n_items}"
    )
