"""Reading and writing transaction databases in the formats of the era.

Supported formats:

* **FIMI ``.dat``** — one transaction per line, whitespace-separated item
  ids (the format of the FIMI'03/'04 repository the paper's references
  [4], [10] evaluate on).  Items parse to ``int`` when possible, else stay
  strings.
* **basket CSV** — ``tid,item`` pairs, one row per (transaction, item)
  occurrence; the long format relational databases export.

Both readers accept plain or gzip-compressed files (by extension).

Robust parsing
--------------
Real dumps are dirty: binary junk spliced into text, truncated gzip
streams, malformed rows.  By default the readers are **tolerant** — bad
lines are skipped and *counted* rather than aborting a scan halfway
through a multi-gigabyte file; the ``*_report`` variants return a
:class:`ParseReport` describing exactly what was dropped.  Pass
``strict=True`` to raise :class:`~repro.errors.DatasetError` on the first
defect instead (the right mode for curated benchmark inputs, where any
damage means the file is wrong).
"""

from __future__ import annotations

import gzip
import io
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, TextIO

from repro.data.transaction_db import TransactionDatabase
from repro.errors import DatasetError

__all__ = [
    "ParseReport",
    "read_dat",
    "read_dat_report",
    "write_dat",
    "read_basket_csv",
    "read_basket_csv_report",
    "write_basket_csv",
    "iter_dat_lines",
    "iter_dat_stream",
]

#: Cap on per-line error messages kept in a :class:`ParseReport` — the
#: counts stay exact, but a million-line garbage file should not grow a
#: million-entry list.
MAX_REPORT_ERRORS = 20


@dataclass
class ParseReport:
    """What a tolerant read skipped, and why.

    ``n_lines`` counts every line seen, ``n_transactions`` the ones that
    produced data, ``n_skipped`` the ones dropped as malformed.
    ``truncated`` is set when the stream itself died mid-scan (truncated
    or corrupt gzip, I/O error after a successful open): everything read
    up to that point is kept.  ``errors`` holds the first
    :data:`MAX_REPORT_ERRORS` defect descriptions.
    """

    path: str
    n_lines: int = 0
    n_transactions: int = 0
    n_skipped: int = 0
    truncated: bool = False
    errors: list[str] = field(default_factory=list)

    def ok(self) -> bool:
        """True when the file parsed clean end to end."""
        return self.n_skipped == 0 and not self.truncated

    def record(self, message: str) -> None:
        self.n_skipped += 1
        if len(self.errors) < MAX_REPORT_ERRORS:
            self.errors.append(message)

    def __repr__(self) -> str:
        state = "clean" if self.ok() else (
            f"skipped={self.n_skipped}" + (", truncated" if self.truncated else "")
        )
        return (
            f"ParseReport({self.path!r}, lines={self.n_lines}, "
            f"transactions={self.n_transactions}, {state})"
        )


def _open_text(path: str | Path, mode: str) -> TextIO:
    path = Path(path)
    # readers decode with errors="replace" so binary junk surfaces as
    # U+FFFD on the offending *line* instead of a UnicodeDecodeError that
    # kills the whole scan; the per-line garbage check spots the marker
    errors = "replace" if mode == "r" else "strict"
    if path.suffix == ".gz":
        return io.TextIOWrapper(
            gzip.open(path, mode + "b"), encoding="utf-8", errors=errors
        )
    return open(path, mode + "t", encoding="utf-8", errors=errors)


def _parse_token(token: str) -> Hashable:
    try:
        return int(token)
    except ValueError:
        return token


def _is_garbage(line: str) -> bool:
    return "�" in line or "\x00" in line


def _iter_dat_fh(
    fh: TextIO, label: str, strict: bool, report: ParseReport
) -> Iterator[tuple[Hashable, ...]]:
    """The shared ``.dat`` parse loop over an already-open text handle.

    Reads strictly forward — never seeks — so the same loop serves
    rewindable files and one-shot streams (stdin, sockets) alike.
    """
    lines = iter(fh)
    while True:
        try:
            line = next(lines)
        except StopIteration:
            break
        except (EOFError, OSError) as exc:
            if strict:
                raise DatasetError(
                    f"{label}: stream truncated or corrupt: {exc}"
                ) from exc
            report.truncated = True
            report.record(f"stream truncated or corrupt: {exc}")
            break
        report.n_lines += 1
        if _is_garbage(line):
            if strict:
                raise DatasetError(
                    f"{label}:{report.n_lines}: line contains undecodable bytes"
                )
            report.record(f"line {report.n_lines}: undecodable bytes")
            continue
        tokens = line.split()
        if not tokens:
            continue
        report.n_transactions += 1
        yield tuple(_parse_token(tok) for tok in tokens)


def iter_dat_lines(
    path: str | Path,
    *,
    strict: bool = False,
    report: ParseReport | None = None,
) -> Iterator[tuple[Hashable, ...]]:
    """Stream transactions from a FIMI ``.dat`` file without materialising.

    Blank lines are skipped (some FIMI dumps include them); a line of only
    whitespace is treated as blank rather than as an empty transaction.
    Lines containing undecodable bytes are skipped and counted into
    ``report`` (raised as :class:`DatasetError` under ``strict``), and a
    stream that dies mid-scan (truncated gzip) ends the iteration with
    ``report.truncated`` set instead of crashing.
    """
    if report is None:
        report = ParseReport(path=str(path))
    try:
        fh = _open_text(path, "r")
    except OSError as exc:
        raise DatasetError(f"cannot read {path}: {exc}") from exc
    with fh:
        yield from _iter_dat_fh(fh, str(path), strict, report)


class _ConcatReader(io.RawIOBase):
    """A forward-only raw reader that replays consumed head bytes first.

    Gzip detection on an unseekable stream must *consume* the two magic
    bytes to look at them; this shim splices them back in front of the
    remaining stream so the decoder sees the byte sequence intact —
    without ever calling ``seek``.
    """

    def __init__(self, head: bytes, stream):
        self._head = head
        self._stream = stream

    def readable(self) -> bool:
        return True

    def readinto(self, buffer) -> int:
        if self._head:
            n = min(len(buffer), len(self._head))
            buffer[:n] = self._head[:n]
            self._head = self._head[n:]
            return n
        data = self._stream.read(len(buffer))
        if not data:
            return 0
        buffer[: len(data)] = data
        return len(data)


#: Gzip member magic — the two bytes peeked for stream auto-detection.
_GZIP_MAGIC = b"\x1f\x8b"


def iter_dat_stream(
    stream,
    *,
    strict: bool = False,
    report: ParseReport | None = None,
    compression: str = "auto",
    label: str = "<stream>",
) -> Iterator[tuple[Hashable, ...]]:
    """Stream transactions from an **unseekable** file object, single pass.

    Accepts a text-mode or binary-mode stream (``sys.stdin``,
    ``sys.stdin.buffer``, a socket ``makefile``, a pipe).  The stream is
    read strictly forward — never seeked, never rewound, never buffered
    whole — so arbitrarily long feeds ingest in constant memory.

    ``compression`` applies to binary streams: ``"auto"`` (default)
    peeks two bytes for the gzip magic and splices them back, ``"gzip"``
    forces decompression, ``"none"`` forces plain text.  Text-mode
    streams are already decoded and are consumed as-is.  Semantics match
    :func:`iter_dat_lines`: tolerant by default with every defect counted
    in ``report`` (truncated gzip ends iteration with
    ``report.truncated``), ``strict=True`` raises on the first defect.
    """
    if compression not in ("auto", "gzip", "none"):
        raise DatasetError(
            f"compression must be 'auto', 'gzip' or 'none', got {compression!r}"
        )
    if report is None:
        report = ParseReport(path=label)
    probe = stream.read(0)
    if isinstance(probe, str):
        # already-decoded text: compression is the transport's business
        yield from _iter_dat_fh(stream, label, strict, report)
        return
    if compression == "auto":
        head = stream.read(len(_GZIP_MAGIC))
        gzipped = head.startswith(_GZIP_MAGIC)
    else:
        head = b""
        gzipped = compression == "gzip"
    raw = io.BufferedReader(_ConcatReader(head, stream))
    binary = gzip.GzipFile(fileobj=raw, mode="rb") if gzipped else raw
    fh = io.TextIOWrapper(binary, encoding="utf-8", errors="replace")
    yield from _iter_dat_fh(fh, label, strict, report)


def read_dat(path: str | Path, *, strict: bool = False) -> TransactionDatabase:
    """Load a FIMI ``.dat`` (optionally ``.dat.gz``) file.

    Tolerant by default (garbage lines skipped, truncated streams yield
    what was readable); ``strict=True`` raises on any defect.  Use
    :func:`read_dat_report` when you need to know what was skipped.
    """
    return read_dat_report(path, strict=strict)[0]


def read_dat_report(
    path: str | Path, *, strict: bool = False
) -> tuple[TransactionDatabase, ParseReport]:
    """Like :func:`read_dat`, returning the :class:`ParseReport` too."""
    report = ParseReport(path=str(path))
    db = TransactionDatabase(iter_dat_lines(path, strict=strict, report=report))
    return db, report


def write_dat(db: Iterable[Iterable[Hashable]], path: str | Path) -> None:
    """Write transactions in FIMI format, items sorted for determinism."""
    from repro.core.rank import sort_key

    with _open_text(path, "w") as fh:
        for t in db:
            items = sorted(set(t), key=sort_key)
            fh.write(" ".join(str(i) for i in items))
            fh.write("\n")


def read_basket_csv(
    path: str | Path, *, header: bool = True, strict: bool = False
) -> TransactionDatabase:
    """Load ``tid,item`` long-format CSV into a database.

    Transactions appear in first-seen TID order.  TIDs may be arbitrary
    strings; items parse to int when possible.  Malformed rows (no comma)
    and undecodable lines are skipped by default; ``strict=True`` raises
    :class:`DatasetError` on the first one.
    """
    return read_basket_csv_report(path, header=header, strict=strict)[0]


def read_basket_csv_report(
    path: str | Path, *, header: bool = True, strict: bool = False
) -> tuple[TransactionDatabase, ParseReport]:
    """Like :func:`read_basket_csv`, returning the :class:`ParseReport` too."""
    report = ParseReport(path=str(path))
    baskets: dict[str, set] = {}
    order: list[str] = []
    try:
        fh = _open_text(path, "r")
    except OSError as exc:
        raise DatasetError(f"cannot read {path}: {exc}") from exc
    with fh:
        lines = iter(fh)
        while True:
            try:
                line = next(lines)
            except StopIteration:
                break
            except (EOFError, OSError) as exc:
                if strict:
                    raise DatasetError(
                        f"{path}: stream truncated or corrupt: {exc}"
                    ) from exc
                report.truncated = True
                report.record(f"stream truncated or corrupt: {exc}")
                break
            report.n_lines += 1
            lineno = report.n_lines
            line = line.strip()
            if not line:
                continue
            if header and lineno == 1:
                continue
            if _is_garbage(line):
                if strict:
                    raise DatasetError(
                        f"{path}:{lineno}: line contains undecodable bytes"
                    )
                report.record(f"line {lineno}: undecodable bytes")
                continue
            parts = line.split(",")
            if len(parts) < 2:
                if strict:
                    raise DatasetError(
                        f"{path}:{lineno}: expected 'tid,item', got {line!r}"
                    )
                report.record(f"line {lineno}: expected 'tid,item', got {line!r}")
                continue
            tid, item = parts[0].strip(), ",".join(parts[1:]).strip()
            if tid not in baskets:
                baskets[tid] = set()
                order.append(tid)
            baskets[tid].add(_parse_token(item))
            report.n_transactions = len(order)
    return TransactionDatabase(baskets[tid] for tid in order), report


def write_basket_csv(db: Iterable[Iterable[Hashable]], path: str | Path) -> None:
    """Write transactions as ``tid,item`` rows with a header."""
    from repro.core.rank import sort_key

    with _open_text(path, "w") as fh:
        fh.write("tid,item\n")
        for tid, t in enumerate(db, start=1):
            for item in sorted(set(t), key=sort_key):
                fh.write(f"{tid},{item}\n")
