"""Reading and writing transaction databases in the formats of the era.

Supported formats:

* **FIMI ``.dat``** — one transaction per line, whitespace-separated item
  ids (the format of the FIMI'03/'04 repository the paper's references
  [4], [10] evaluate on).  Items parse to ``int`` when possible, else stay
  strings.
* **basket CSV** — ``tid,item`` pairs, one row per (transaction, item)
  occurrence; the long format relational databases export.

Both readers accept plain or gzip-compressed files (by extension).
"""

from __future__ import annotations

import gzip
import io
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Hashable, TextIO

from repro.data.transaction_db import TransactionDatabase
from repro.errors import DatasetError

__all__ = [
    "read_dat",
    "write_dat",
    "read_basket_csv",
    "write_basket_csv",
    "iter_dat_lines",
]


def _open_text(path: str | Path, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode + "t", encoding="utf-8")


def _parse_token(token: str) -> Hashable:
    try:
        return int(token)
    except ValueError:
        return token


def iter_dat_lines(path: str | Path) -> Iterator[tuple[Hashable, ...]]:
    """Stream transactions from a FIMI ``.dat`` file without materialising.

    Blank lines are skipped (some FIMI dumps include them); a line of only
    whitespace is treated as blank rather than as an empty transaction.
    """
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            tokens = line.split()
            if not tokens:
                continue
            yield tuple(_parse_token(tok) for tok in tokens)


def read_dat(path: str | Path) -> TransactionDatabase:
    """Load a FIMI ``.dat`` (optionally ``.dat.gz``) file."""
    try:
        return TransactionDatabase(iter_dat_lines(path))
    except OSError as exc:
        raise DatasetError(f"cannot read {path}: {exc}") from exc


def write_dat(db: Iterable[Iterable[Hashable]], path: str | Path) -> None:
    """Write transactions in FIMI format, items sorted for determinism."""
    from repro.core.rank import sort_key

    with _open_text(path, "w") as fh:
        for t in db:
            items = sorted(set(t), key=sort_key)
            fh.write(" ".join(str(i) for i in items))
            fh.write("\n")


def read_basket_csv(path: str | Path, *, header: bool = True) -> TransactionDatabase:
    """Load ``tid,item`` long-format CSV into a database.

    Transactions appear in first-seen TID order.  TIDs may be arbitrary
    strings; items parse to int when possible.
    """
    baskets: dict[str, set] = {}
    order: list[str] = []
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if header and lineno == 1:
                continue
            parts = line.split(",")
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{lineno}: expected 'tid,item', got {line!r}"
                )
            tid, item = parts[0].strip(), ",".join(parts[1:]).strip()
            if tid not in baskets:
                baskets[tid] = set()
                order.append(tid)
            baskets[tid].add(_parse_token(item))
    return TransactionDatabase(baskets[tid] for tid in order)


def write_basket_csv(db: Iterable[Iterable[Hashable]], path: str | Path) -> None:
    """Write transactions as ``tid,item`` rows with a header."""
    from repro.core.rank import sort_key

    with _open_text(path, "w") as fh:
        fh.write("tid,item\n")
        for tid, t in enumerate(db, start=1):
            for item in sorted(set(t), key=sort_key):
                fh.write(f"{tid},{item}\n")
