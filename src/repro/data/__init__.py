"""Transaction-database substrate: representations, I/O, and generators."""

from repro.data.attributes import (
    discretize_numeric,
    from_records,
    generate_attribute_table,
)
from repro.data.transaction_db import TransactionDatabase, item_supports, resolve_min_support
from repro.data.io import read_dat, write_dat, read_basket_csv, write_basket_csv
from repro.data.quest import QuestGenerator, QuestParameters, generate_quest, t_name
from repro.data.generators import (
    PlantedRule,
    generate_dense,
    generate_planted,
    generate_uniform,
    generate_zipf,
)
from repro.data.datasets import (
    PAPER_EXAMPLE,
    PAPER_EXAMPLE_MIN_SUPPORT,
    available,
    load,
    paper_example,
    register,
)

__all__ = [
    "TransactionDatabase",
    "item_supports",
    "resolve_min_support",
    "from_records",
    "discretize_numeric",
    "generate_attribute_table",
    "read_dat",
    "write_dat",
    "read_basket_csv",
    "write_basket_csv",
    "QuestGenerator",
    "QuestParameters",
    "generate_quest",
    "t_name",
    "PlantedRule",
    "generate_dense",
    "generate_planted",
    "generate_uniform",
    "generate_zipf",
    "PAPER_EXAMPLE",
    "PAPER_EXAMPLE_MIN_SUPPORT",
    "available",
    "load",
    "paper_example",
    "register",
]
