"""Named, reproducible benchmark workloads.

The registry gives every experiment in DESIGN.md a stable dataset handle.
Datasets are generated on first use (seeded, hence bit-identical across
runs) and cached in-process.  ``PAPER_EXAMPLE`` is Table 1 of the paper,
verbatim.

>>> from repro.data.datasets import load
>>> db = load("T10.I4.D1K")
>>> len(db)
1000
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Dict

from repro.data.generators import generate_dense, generate_uniform, generate_zipf
from repro.data.quest import QuestGenerator, QuestParameters
from repro.data.transaction_db import TransactionDatabase
from repro.errors import DatasetError

__all__ = ["PAPER_EXAMPLE", "paper_example", "load", "available", "register"]

#: Table 1 of the paper: six transactions over items A..F.  With absolute
#: min support 2 the frequent items are A, B, C, D (E and F are filtered).
PAPER_EXAMPLE: tuple[tuple[str, ...], ...] = (
    ("A", "B", "C"),
    ("A", "B", "C"),
    ("A", "B", "C", "D"),
    ("A", "B", "D", "E"),
    ("B", "C", "D"),
    ("C", "D", "F"),
)

#: The paper's absolute minimum support for the worked example.
PAPER_EXAMPLE_MIN_SUPPORT = 2


def paper_example() -> TransactionDatabase:
    """Table 1 as a :class:`TransactionDatabase`."""
    return TransactionDatabase(PAPER_EXAMPLE)


_FACTORIES: Dict[str, Callable[[], TransactionDatabase]] = {}
_CACHE: Dict[str, TransactionDatabase] = {}


def register(name: str, factory: Callable[[], TransactionDatabase]) -> None:
    """Register a workload factory under ``name`` (overwrites silently)."""
    _FACTORIES[name] = factory
    _CACHE.pop(name, None)


def available() -> tuple[str, ...]:
    """Names of all registered workloads, sorted."""
    return tuple(sorted(_FACTORIES))


def load(name: str, *, cache: bool = True) -> TransactionDatabase:
    """Materialise the named workload (cached per process by default)."""
    if name not in _FACTORIES:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(available())}"
        )
    if cache and name in _CACHE:
        return _CACHE[name]
    db = _FACTORIES[name]()
    if cache:
        _CACHE[name] = db
    return db


def _quest(n: int, t: float, i: float, n_items: int, seed: int) -> Callable[[], TransactionDatabase]:
    def factory() -> TransactionDatabase:
        params = QuestParameters(
            n_transactions=n,
            avg_transaction_len=t,
            avg_pattern_len=i,
            n_items=n_items,
            n_patterns=max(50, n_items // 2),
            seed=seed,
        )
        return QuestGenerator(params).generate()

    return factory


# ---------------------------------------------------------------------------
# Registry: the workloads the DESIGN.md experiment table refers to.
# Sizes are scaled for pure-Python miners (DESIGN.md §2).
# ---------------------------------------------------------------------------
register("paper-example", paper_example)

# Sparse Quest family (B1, B6, B9)
register("T10.I4.D1K", _quest(1_000, 10, 4, 200, seed=101))
register("T10.I4.D5K", _quest(5_000, 10, 4, 500, seed=101))
register("T10.I4.D10K", _quest(10_000, 10, 4, 500, seed=101))
register("T5.I2.D5K", _quest(5_000, 5, 2, 300, seed=102))
register("T20.I6.D2K", _quest(2_000, 20, 6, 500, seed=103))

# Dense family (B2, B3)
register("DENSE-30", lambda: generate_dense(1_500, 30, 12, seed=201))
register("DENSE-50", lambda: generate_dense(2_000, 50, 15, seed=202))
register("DENSE-75", lambda: generate_dense(2_000, 75, 18, seed=203))
# 5k transactions over a narrow alphabet: big enough to satisfy the
# parallel bench's transaction floor, dense enough that the top-down
# lattice (and thus the worker payload on the pickle transport) is the
# dominant cost rather than PLT construction.
register("DENSE-16.D5K", lambda: generate_dense(5_000, 16, 7, seed=204))

# Null models (B4, B8)
register("ZIPF-200", lambda: generate_zipf(5_000, 200, 8.0, seed=301))
register("UNIFORM-100", lambda: generate_uniform(5_000, 100, 8, seed=302))
