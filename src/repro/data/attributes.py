"""Attribute-value tables as transaction databases.

The dense benchmark datasets of the era (UCI *mushroom*, *chess*,
*connect*) are not baskets at all: they are categorical records, one
item per (attribute, value) pair, which is why every transaction has the
same length and the data is dense.  This module provides that
transactionization for arbitrary tabular data:

* :func:`from_records` — categorical records (dicts or tuples) to
  transactions of ``"attr=value"`` items;
* :func:`discretize_numeric` — equal-width or quantile binning for
  numeric columns, so mixed tables can be mined;
* :func:`generate_attribute_table` — a synthetic categorical-table
  generator with class-correlated attributes (the mushroom-like substrate
  used by tests and the dense examples).
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from collections.abc import Mapping, Sequence

from repro.data.transaction_db import TransactionDatabase
from repro.errors import DatasetError

__all__ = [
    "from_records",
    "discretize_numeric",
    "generate_attribute_table",
]


def from_records(
    records: Sequence[Mapping | Sequence],
    *,
    columns: Sequence[str] | None = None,
    missing: object = None,
) -> TransactionDatabase:
    """Turn categorical records into ``attr=value`` transactions.

    ``records`` may be mappings (column -> value) or positional sequences
    (then ``columns`` names them, defaulting to ``c0..cN``).  Entries
    equal to ``missing`` are skipped — a record missing an attribute
    simply lacks that item, exactly how the UCI dumps treat ``?``.
    """
    transactions = []
    for idx, record in enumerate(records):
        if isinstance(record, Mapping):
            pairs = record.items()
        else:
            names = columns or [f"c{i}" for i in range(len(record))]
            if len(names) < len(record):
                raise DatasetError(
                    f"record {idx} has {len(record)} fields but only "
                    f"{len(names)} columns were named"
                )
            pairs = zip(names, record)
        transaction = {
            f"{column}={value}" for column, value in pairs if value != missing
        }
        transactions.append(transaction)
    return TransactionDatabase(transactions)


def discretize_numeric(
    values: Sequence[float],
    n_bins: int,
    *,
    strategy: str = "width",
) -> list[str]:
    """Bin numeric values into categorical labels ``b0..b{n-1}``.

    ``strategy="width"`` uses equal-width bins over [min, max];
    ``"quantile"`` places bin edges at value quantiles so each bin gets a
    similar population (the usual choice for skewed measurements).
    """
    if n_bins < 1:
        raise DatasetError("n_bins must be >= 1")
    if not values:
        return []
    if strategy not in ("width", "quantile"):
        raise DatasetError(f"unknown strategy {strategy!r}")
    lo, hi = min(values), max(values)
    if lo == hi or n_bins == 1:
        return ["b0"] * len(values)
    if strategy == "width":
        span = hi - lo
        edges = [lo + span * i / n_bins for i in range(1, n_bins)]
        return [f"b{bisect_right(edges, v)}" for v in values]
    ordered = sorted(values)
    edges = []
    for i in range(1, n_bins):
        pos = i * len(ordered) // n_bins
        edges.append(ordered[min(pos, len(ordered) - 1)])
    # collapse duplicate edges (heavily repeated values); quantile edges sit
    # ON data values, so a value equal to an edge belongs to the lower bin
    # (bisect_left), otherwise a dominant repeated value empties every bin
    # below it
    edges = sorted(set(edges))
    return [f"b{bisect_left(edges, v)}" for v in values]


def generate_attribute_table(
    n_records: int = 1000,
    n_attributes: int = 10,
    n_values: int = 4,
    *,
    n_classes: int = 2,
    class_correlation: float = 0.8,
    seed: int = 0,
) -> tuple[list[dict], list[int]]:
    """Synthetic categorical table with class-correlated attributes.

    Each record belongs to a latent class; with probability
    ``class_correlation`` an attribute takes its class's preferred value,
    else a uniform one — the structure that makes mushroom-style data so
    rich in frequent itemsets.  Returns ``(records, class labels)``.
    """
    if not 0 <= class_correlation <= 1:
        raise DatasetError("class_correlation must be in [0, 1]")
    if n_values < 1 or n_attributes < 1 or n_classes < 1:
        raise DatasetError("counts must be >= 1")
    rng = random.Random(seed)
    preferred = [
        [rng.randrange(n_values) for _ in range(n_attributes)]
        for _ in range(n_classes)
    ]
    records: list[dict] = []
    labels: list[int] = []
    for _ in range(n_records):
        cls = rng.randrange(n_classes)
        record = {}
        for a in range(n_attributes):
            if rng.random() < class_correlation:
                value = preferred[cls][a]
            else:
                value = rng.randrange(n_values)
            record[f"a{a}"] = f"v{value}"
        records.append(record)
        labels.append(cls)
    return records, labels
