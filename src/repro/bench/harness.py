"""Benchmark harness: timing, validation and table rendering.

The pytest-benchmark files under ``benchmarks/`` exercise single
(workload, method, support) cells; this module provides the sweep driver
that regenerates a full table/figure series in one call — what
``examples/run_experiments.py`` and EXPERIMENTS.md use.

Every sweep cross-validates miner outputs against each other (same itemset
count and supports) so a benchmark can never silently report the speed of
a wrong answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.mining import mine_frequent_itemsets
from repro.data.transaction_db import TransactionDatabase
from repro.errors import ReproError

__all__ = ["Measurement", "SweepResult", "time_call", "run_support_sweep", "format_table"]


@dataclass(frozen=True)
class Measurement:
    """One benchmark cell."""

    workload: str
    method: str
    min_support: float | int
    seconds: float
    n_itemsets: int
    note: str = ""


@dataclass
class SweepResult:
    """All cells of one experiment, with helpers for rendering."""

    title: str
    measurements: list[Measurement] = field(default_factory=list)

    def methods(self) -> list[str]:
        seen: dict[str, None] = {}
        for m in self.measurements:
            seen.setdefault(m.method)
        return list(seen)

    def supports(self) -> list:
        seen: dict = {}
        for m in self.measurements:
            seen.setdefault(m.min_support)
        return list(seen)

    def cell(self, method: str, min_support) -> Measurement | None:
        for m in self.measurements:
            if m.method == method and m.min_support == min_support:
                return m
        return None

    def as_rows(self) -> list[tuple[str, ...]]:
        """Rows: one per support level, one column per method (seconds)."""
        rows = []
        for sup in self.supports():
            row = [str(sup)]
            n_itemsets = ""
            for method in self.methods():
                m = self.cell(method, sup)
                row.append(f"{m.seconds:.3f}" if m else "-")
                if m:
                    n_itemsets = str(m.n_itemsets)
            row.append(n_itemsets)
            rows.append(tuple(row))
        return rows

    def render(self) -> str:
        header = ("min_sup",) + tuple(self.methods()) + ("#itemsets",)
        return f"== {self.title} ==\n" + format_table(self.as_rows(), header)


def format_table(rows: Sequence[tuple[str, ...]], header: tuple[str, ...]) -> str:
    """Fixed-width text table (same style as the viz renderers)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    return "\n".join([fmt(header), "  ".join("-" * w for w in widths)] + [fmt(r) for r in rows])


def time_call(fn: Callable, *args, repeat: int = 1, **kwargs) -> tuple[float, object]:
    """Best-of-``repeat`` wall time and the (last) return value."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_support_sweep(
    title: str,
    db: TransactionDatabase,
    methods: Iterable[str],
    supports: Iterable[float | int],
    *,
    repeat: int = 1,
    max_len: int | None = None,
    validate: bool = True,
    method_kwargs: dict | None = None,
) -> SweepResult:
    """Time every (method, support) cell on one workload.

    With ``validate=True`` (default) all methods' outputs at each support
    level are checked for exact agreement; a mismatch raises
    :class:`ReproError` naming the methods, which turns a silent
    correctness regression into a benchmark failure.
    """
    sweep = SweepResult(title)
    method_kwargs = method_kwargs or {}
    for sup in supports:
        reference: dict | None = None
        reference_method = ""
        for method in methods:
            kwargs = dict(method_kwargs.get(method, {}))
            seconds, result = time_call(
                mine_frequent_itemsets,
                db,
                sup,
                method=method,
                max_len=max_len,
                repeat=repeat,
                **kwargs,
            )
            table = result.as_dict()
            if validate:
                if reference is None:
                    reference, reference_method = table, method
                elif table != reference:
                    raise ReproError(
                        f"{title}: methods {reference_method!r} and {method!r} "
                        f"disagree at min_support={sup} "
                        f"({len(reference)} vs {len(table)} itemsets)"
                    )
            sweep.measurements.append(
                Measurement(
                    workload=title,
                    method=method,
                    min_support=sup,
                    seconds=seconds,
                    n_itemsets=len(table),
                )
            )
    return sweep
