"""Benchmark harness utilities (timing, sweeps, canonical grids, figures)."""

from repro.bench.harness import (
    Measurement,
    SweepResult,
    format_table,
    run_support_sweep,
    time_call,
)
from repro.bench.plotting import render_line_chart, sweep_to_svg
from repro.bench.report import load_benchmark_json, render_groups
from repro.bench.workloads import GRIDS, ExperimentGrid, grid, scaled_db

__all__ = [
    "Measurement",
    "SweepResult",
    "format_table",
    "run_support_sweep",
    "time_call",
    "render_line_chart",
    "load_benchmark_json",
    "render_groups",
    "sweep_to_svg",
    "GRIDS",
    "ExperimentGrid",
    "grid",
    "scaled_db",
]
