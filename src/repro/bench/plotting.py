"""Dependency-free SVG line charts for benchmark sweeps.

matplotlib is not a dependency of this library, but a benchmark harness
without figures forces readers to eyeball tables.  This module emits
small, self-contained SVG files (log-scale y optional) from
:class:`~repro.bench.harness.SweepResult` objects — enough to regenerate
the runtime-vs-support *figures* an evaluation section would show.

The SVG is hand-assembled (no f-string injection of untrusted text:
labels are XML-escaped), viewable in any browser.
"""

from __future__ import annotations

import math
from pathlib import Path
from xml.sax.saxutils import escape

from repro.bench.harness import SweepResult

__all__ = ["sweep_to_svg", "render_line_chart"]

# a small qualitative palette (colour-blind safe-ish)
_COLORS = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb")

_WIDTH, _HEIGHT = 640, 400
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 160, 40, 60


def _ticks(lo: float, hi: float, log: bool) -> list[float]:
    if log:
        lo_e = math.floor(math.log10(lo))
        hi_e = math.ceil(math.log10(hi))
        return [10.0**e for e in range(lo_e, hi_e + 1)]
    if hi == lo:
        return [lo]
    step = 10 ** math.floor(math.log10(hi - lo))
    if (hi - lo) / step > 5:
        step *= 2
    first = math.floor(lo / step) * step
    ticks = []
    v = first
    while v <= hi + 1e-12:
        if v >= lo - 1e-12:
            ticks.append(round(v, 10))
        v += step
    return ticks


def render_line_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    title: str,
    x_label: str,
    y_label: str,
    log_y: bool = False,
    log_x: bool = False,
) -> str:
    """Render named (x, y) series to an SVG string."""
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("no data to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_x and min(xs) <= 0 or log_y and min(ys) <= 0:
        raise ValueError("log scale requires strictly positive values")
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_lo == x_hi:
        x_lo, x_hi = x_lo * 0.9 or -1, x_hi * 1.1 or 1
    if y_lo == y_hi:
        y_lo, y_hi = y_lo * 0.9 or -1, y_hi * 1.1 or 1

    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def sx(x: float) -> float:
        if log_x:
            frac = (math.log10(x) - math.log10(x_lo)) / (
                math.log10(x_hi) - math.log10(x_lo)
            )
        else:
            frac = (x - x_lo) / (x_hi - x_lo)
        return _MARGIN_L + frac * plot_w

    def sy(y: float) -> float:
        if log_y:
            frac = (math.log10(y) - math.log10(y_lo)) / (
                math.log10(y_hi) - math.log10(y_lo)
            )
        else:
            frac = (y - y_lo) / (y_hi - y_lo)
        return _MARGIN_T + (1 - frac) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="22" text-anchor="middle" font-size="15" '
        f'font-weight="bold">{escape(title)}</text>',
    ]
    # axes frame
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#444"/>'
    )
    # y ticks + gridlines
    for tick in _ticks(y_lo, y_hi, log_y):
        if not y_lo <= tick <= y_hi:
            continue
        y = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{y:.1f}" x2="{_MARGIN_L + plot_w}" '
            f'y2="{y:.1f}" stroke="#ddd"/>'
        )
        label = f"{tick:g}"
        parts.append(
            f'<text x="{_MARGIN_L - 6}" y="{y + 4:.1f}" text-anchor="end">{label}</text>'
        )
    # x ticks
    for tick in _ticks(x_lo, x_hi, log_x):
        if not x_lo <= tick <= x_hi:
            continue
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{_MARGIN_T + plot_h}" x2="{x:.1f}" '
            f'y2="{_MARGIN_T + plot_h + 4}" stroke="#444"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 18}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    # axis labels
    parts.append(
        f'<text x="{_MARGIN_L + plot_w / 2}" y="{_HEIGHT - 14}" '
        f'text-anchor="middle">{escape(x_label)}</text>'
    )
    parts.append(
        f'<text x="18" y="{_MARGIN_T + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 18 {_MARGIN_T + plot_h / 2})">{escape(y_label)}</text>'
    )
    # series
    for idx, (name, pts) in enumerate(series.items()):
        color = _COLORS[idx % len(_COLORS)]
        pts = sorted(pts)
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
            for i, (x, y) in enumerate(pts)
        )
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
        for x, y in pts:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3.2" fill="{color}"/>'
            )
        # legend entry
        ly = _MARGIN_T + 14 + idx * 18
        lx = _MARGIN_L + plot_w + 12
        parts.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 20}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 26}" y="{ly}">{escape(str(name))}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def sweep_to_svg(
    sweep: SweepResult,
    path: str | Path,
    *,
    log_y: bool = True,
    log_x: bool = True,
) -> Path:
    """Write a runtime-vs-support figure for a sweep; returns the path."""
    series: dict[str, list[tuple[float, float]]] = {}
    for m in sweep.measurements:
        series.setdefault(m.method, []).append((float(m.min_support), m.seconds))
    svg = render_line_chart(
        series,
        title=sweep.title,
        x_label="minimum support",
        y_label="seconds",
        log_y=log_y,
        log_x=log_x,
    )
    path = Path(path)
    path.write_text(svg, encoding="utf-8")
    return path
