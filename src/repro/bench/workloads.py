"""Canonical experiment grids shared by the pytest benches and the sweep CLI.

Each entry corresponds to one DESIGN.md experiment row and fixes the
workload, method set and support grid so that the pytest-benchmark files
and ``examples/run_experiments.py`` measure exactly the same cells.

Grids are deliberately small enough that the full suite runs in minutes of
pure Python; set ``REPRO_BENCH_SCALE`` (float, default 1.0) to scale
transaction counts up for longer, more stable runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.data.datasets import load
from repro.data.transaction_db import TransactionDatabase

__all__ = ["ExperimentGrid", "GRIDS", "grid", "scaled_db"]

#: Methods compared in the headline sweeps (B1/B2).  ``plt`` is the
#: paper's conditional algorithm.
HEADLINE_METHODS = ("plt", "fpgrowth", "hmine", "eclat", "apriori")


@dataclass(frozen=True)
class ExperimentGrid:
    """One experiment's fixed parameter grid."""

    experiment: str  # DESIGN.md id, e.g. "B1"
    dataset: str  # repro.data.datasets registry name
    methods: tuple[str, ...]
    supports: tuple[float, ...]  # relative thresholds
    description: str = ""
    max_len: int | None = None
    method_kwargs: dict = field(default_factory=dict)


GRIDS: dict[str, ExperimentGrid] = {
    "B1": ExperimentGrid(
        experiment="B1",
        dataset="T10.I4.D5K",
        methods=HEADLINE_METHODS,
        supports=(0.05, 0.02, 0.01, 0.005),
        description="runtime vs min_support, sparse Quest data",
    ),
    "B2": ExperimentGrid(
        experiment="B2",
        dataset="DENSE-50",
        methods=("plt", "fpgrowth", "hmine", "eclat", "declat"),
        supports=(0.3, 0.25, 0.2, 0.15),
        description="runtime vs min_support, dense correlated data",
    ),
    "B3": ExperimentGrid(
        experiment="B3",
        dataset="DENSE-30",
        methods=("plt", "plt-topdown"),
        supports=(0.1, 0.02, 0.005, 0.002),
        description="top-down vs conditional crossover (paper §6 claim)",
        method_kwargs={"plt-topdown": {"work_limit": 500_000_000}},
    ),
    "B6": ExperimentGrid(
        experiment="B6",
        dataset="T10.I4.D10K",
        methods=("plt", "fpgrowth"),
        supports=(0.01,),
        description="scalability vs database size (driven by bench file)",
    ),
}


def grid(name: str) -> ExperimentGrid:
    return GRIDS[name]


def scaled_db(dataset: str) -> TransactionDatabase:
    """Load a dataset, optionally subsampled by ``REPRO_BENCH_SCALE``.

    Scale < 1 subsamples transactions (quick CI runs); scale is clamped to
    (0, 1] because the registry datasets have fixed generated sizes.
    """
    db = load(dataset)
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    scale = min(scale, 1.0)
    if scale < 1.0:
        return db.sample(max(1, int(len(db) * scale)), seed=0)
    return db
