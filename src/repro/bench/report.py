"""Render pytest-benchmark JSON output as the EXPERIMENTS.md tables.

Workflow::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python -m repro.bench.report bench.json            # all groups
    python -m repro.bench.report bench.json --group B1 # one experiment

Each benchmark group becomes one table: a row per benchmark with its
median time and every ``extra_info`` key the benchmark recorded (itemset
counts, byte volumes, model speedups, ...), so the human-readable record
regenerates mechanically from the raw run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.harness import format_table
from repro.errors import DatasetError

__all__ = ["load_benchmark_json", "render_groups", "main"]


def load_benchmark_json(path: str | Path) -> list[dict]:
    """Parse the file; returns the benchmark entries."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise DatasetError(f"cannot read benchmark JSON {path}: {exc}") from exc
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        raise DatasetError(f"{path}: not pytest-benchmark output (no 'benchmarks')")
    return benchmarks


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds * 1e6:.0f} us"


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_groups(
    benchmarks: list[dict], *, group_filter: str | None = None
) -> str:
    """One aligned table per benchmark group, sorted by median time."""
    groups: dict[str, list[dict]] = {}
    for bench in benchmarks:
        group = bench.get("group") or "(ungrouped)"
        if group_filter is not None and not group.startswith(group_filter):
            continue
        groups.setdefault(group, []).append(bench)
    if not groups:
        available = sorted({b.get("group") or "(ungrouped)" for b in benchmarks})
        raise DatasetError(
            f"no groups match {group_filter!r}; available: {', '.join(available)}"
        )
    sections = []
    for group in sorted(groups):
        entries = sorted(groups[group], key=lambda b: b["stats"]["median"])
        extra_keys: list[str] = []
        for bench in entries:
            for key in bench.get("extra_info", {}):
                if key not in extra_keys:
                    extra_keys.append(key)
        rows = []
        for bench in entries:
            name = bench["name"]
            # strip the module prefix pytest adds for readability
            name = name.split("::")[-1]
            row = [name, _fmt_seconds(bench["stats"]["median"])]
            info = bench.get("extra_info", {})
            row.extend(_fmt_value(info[k]) if k in info else "-" for k in extra_keys)
            rows.append(tuple(row))
        header = ("benchmark", "median") + tuple(extra_keys)
        sections.append(f"== {group} ==\n" + format_table(rows, header))
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.report",
        description="render pytest-benchmark JSON as experiment tables",
    )
    parser.add_argument("json_path", help="output of --benchmark-json=...")
    parser.add_argument("--group", default=None, help="only groups with this prefix")
    args = parser.parse_args(argv)
    try:
        benchmarks = load_benchmark_json(args.json_path)
        print(render_groups(benchmarks, group_filter=args.group))
    except DatasetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
