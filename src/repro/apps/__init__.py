"""Downstream applications built on the mining stack (paper §1 motivation)."""

from repro.apps.classifier import CBAClassifier, ClassRule

__all__ = ["CBAClassifier", "ClassRule"]
