"""CBA — an associative classifier built on the mining stack.

The paper's introduction motivates frequent-itemset mining with
decision-making on retail and *medical data*; the era's flagship
downstream application was CBA (Liu, Hsu & Ma, KDD 1998): mine **class
association rules** (rules whose consequent is a class label), rank them
by confidence/support, keep the ones that improve training coverage, and
classify new records by the first matching rule.

This implementation follows CBA-RG/CBA-CB in their database-cover form:

1. mine frequent itemsets over ``features ∪ {class item}`` (any miner in
   this library; PLT conditional by default),
2. keep rules ``feature itemset → class`` meeting support/confidence,
3. sort by (confidence, support, shorter antecedent first),
4. greedily select rules that correctly cover at least one still-
   uncovered training record; covered records are removed,
5. the default class is the majority of the residual uncovered records.

Class labels are wrapped as ``("__class__", label)`` items so they can
never collide with feature items.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.mining import mine_frequent_itemsets
from repro.core.rank import sort_key
from repro.errors import ReproError

__all__ = ["ClassRule", "CBAClassifier", "first_matching_rule"]

Item = Hashable
_CLASS = "__class__"


def first_matching_rule(rules, features: frozenset):
    """First rule (in list order) whose antecedent is contained in ``features``.

    The CBA-CB classification step, factored out so other consumers of a
    ranked rule list — the serving daemon's recommendation endpoint — can
    reuse it.  Works on anything exposing an ``antecedent`` iterable
    (:class:`ClassRule`, :class:`repro.rules.generation.Rule`); returns
    ``None`` when nothing matches.
    """
    for rule in rules:
        if frozenset(rule.antecedent) <= features:
            return rule
    return None


@dataclass(frozen=True)
class ClassRule:
    """``antecedent -> label`` with training-set statistics."""

    antecedent: frozenset
    label: Hashable
    support_count: int
    confidence: float

    def matches(self, features: frozenset) -> bool:
        return self.antecedent <= features

    def __str__(self) -> str:
        items = ", ".join(str(i) for i in sorted(self.antecedent, key=sort_key))
        return (
            f"{{{items}}} => {self.label!r} "
            f"(sup={self.support_count}, conf={self.confidence:.3f})"
        )


class CBAClassifier:
    """Train with :meth:`fit`, predict with :meth:`predict`.

    Parameters
    ----------
    min_support:
        Relative or absolute support for rule mining (CBA default 1%).
    min_confidence:
        Confidence bar for candidate rules (CBA default 50%).
    max_antecedent:
        Cap on rule antecedent size (controls mining cost).
    method:
        Which frequent-itemset miner to use underneath.
    """

    def __init__(
        self,
        min_support: float | int = 0.01,
        min_confidence: float = 0.5,
        *,
        max_antecedent: int = 4,
        method: str = "plt",
    ):
        if not 0.0 < min_confidence <= 1.0:
            raise ReproError(f"min_confidence must be in (0, 1], got {min_confidence}")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.max_antecedent = max_antecedent
        self.method = method
        self.rules: list[ClassRule] = []
        self.default_label: Hashable = None
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(
        self, records: Sequence[Iterable[Item]], labels: Sequence[Hashable]
    ) -> "CBAClassifier":
        if len(records) != len(labels):
            raise ReproError("records and labels must align")
        if not records:
            raise ReproError("cannot fit on an empty training set")
        feature_sets = [frozenset(r) for r in records]
        transactions = [
            fs | {(_CLASS, label)} for fs, label in zip(feature_sets, labels)
        ]
        result = mine_frequent_itemsets(
            transactions,
            self.min_support,
            method=self.method,
            max_len=self.max_antecedent + 1,
        )
        table = result.as_dict()

        # candidate class association rules
        candidates: list[ClassRule] = []
        for itemset, support in table.items():
            class_items = [i for i in itemset if isinstance(i, tuple) and i and i[0] == _CLASS]
            if len(class_items) != 1:
                continue
            antecedent = itemset - {class_items[0]}
            if not antecedent:
                continue
            ante_support = table.get(antecedent)
            if ante_support is None:
                continue
            confidence = support / ante_support
            if confidence >= self.min_confidence:
                candidates.append(
                    ClassRule(antecedent, class_items[0][1], support, confidence)
                )
        candidates.sort(
            key=lambda r: (
                -r.confidence,
                -r.support_count,
                len(r.antecedent),
                [sort_key(i) for i in sorted(r.antecedent, key=sort_key)],
            )
        )

        # database-cover selection
        uncovered = list(range(len(feature_sets)))
        selected: list[ClassRule] = []
        for rule in candidates:
            if not uncovered:
                break
            correct = [
                idx
                for idx in uncovered
                if rule.matches(feature_sets[idx]) and labels[idx] == rule.label
            ]
            if correct:
                selected.append(rule)
                matched = {
                    idx for idx in uncovered if rule.matches(feature_sets[idx])
                }
                uncovered = [idx for idx in uncovered if idx not in matched]
        self.rules = selected

        residual = [labels[idx] for idx in uncovered] or list(labels)
        counts: dict = {}
        for label in residual:
            counts[label] = counts.get(label, 0) + 1
        self.default_label = max(
            counts.items(), key=lambda kv: (kv[1], sort_key(kv[0]))
        )[0]
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_one(self, record: Iterable[Item]) -> Hashable:
        if not self._fitted:
            raise ReproError("classifier is not fitted")
        features = frozenset(record)
        rule = first_matching_rule(self.rules, features)
        return rule.label if rule is not None else self.default_label

    def predict(self, records: Iterable[Iterable[Item]]) -> list:
        return [self.predict_one(r) for r in records]

    def score(
        self, records: Sequence[Iterable[Item]], labels: Sequence[Hashable]
    ) -> float:
        """Accuracy over a labelled set."""
        if len(records) != len(labels):
            raise ReproError("records and labels must align")
        if not records:
            raise ReproError("cannot score an empty set")
        predictions = self.predict(records)
        return sum(p == l for p, l in zip(predictions, labels)) / len(labels)

    def __repr__(self) -> str:
        state = f"{len(self.rules)} rules" if self._fitted else "unfitted"
        return f"CBAClassifier({state}, default={self.default_label!r})"
