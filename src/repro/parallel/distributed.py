"""Distributed PLT mining on the simulated cluster.

An *intelligent-data-distribution* scheme (after Han, Karypis & Kumar,
SIGMOD '97 — the paper's reference [15]) adapted to the PLT's partition
criterion: itemsets are owned by the node that owns their **maximal
item**, and a transaction's contribution to item ``j``'s conditional
database is exactly its prefix before ``j`` — computable locally from the
position vector with no coordination.  The protocol:

========  ==================================================================
superstep  action
========  ==================================================================
0          every node counts item supports over its private partition and
           sends the labelled counter to node 0
1          node 0 reduces the counters, fixes the global rank table
           (frequent items only, lexicographic order) and broadcasts it
2          every node encodes its transactions as position vectors, slices
           its *local* conditional databases per rank, and sends each rank's
           slice (varint-serialized) to the rank's owner node; the slice a
           node owns itself never touches the wire
3          owners merge the received slices with their own, check global
           support, mine each owned item's conditional PLT **entirely
           locally** (Algorithm 3's recursion) and send results to node 0
4          node 0 concatenates — itemsets are partitioned by maximal item,
           so no deduplication or reconciliation is needed
========  ==================================================================

All payloads cross the simulator as real serialized bytes, so
:class:`~repro.parallel.simcluster.ClusterStats` reports the true
communication volume of the scheme (benchmark B15).  Item labels must be
``int`` or ``str`` (the same restriction as the PLT codec).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.compress.plt_codec import decode_label, encode_label
from repro.compress.varint import decode_uvarint, encode_uvarint
from repro.core import position
from repro.core.conditional import _mine, build_conditional_buckets
from repro.core.rank import RankTable, sort_key
from repro.data.transaction_db import item_supports
from repro.errors import ParallelExecutionError
from repro.parallel.simcluster import ClusterStats, SimCluster

__all__ = ["mine_distributed", "owner_of_rank"]

Item = Hashable


def owner_of_rank(rank: int, n_nodes: int) -> int:
    """Static owner map: round-robin over ranks (cheap, well balanced)."""
    return (rank - 1) % n_nodes


# ---------------------------------------------------------------------------
# payload codecs (explicit bytes on the wire)
# ---------------------------------------------------------------------------
def _encode_labelled_counts(counts: dict) -> bytes:
    buf = bytearray()
    encode_uvarint(len(counts), buf)
    for label in sorted(counts, key=sort_key):
        encode_label(label, buf)
        encode_uvarint(counts[label], buf)
    return bytes(buf)


def _decode_labelled_counts(data: bytes) -> dict:
    n, pos = decode_uvarint(data, 0)
    out: dict = {}
    for _ in range(n):
        label, pos = decode_label(data, pos)
        count, pos = decode_uvarint(data, pos)
        out[label] = count
    return out


def _encode_labels(labels: Iterable) -> bytes:
    labels = list(labels)
    buf = bytearray()
    encode_uvarint(len(labels), buf)
    for label in labels:
        encode_label(label, buf)
    return bytes(buf)


def _decode_labels(data: bytes) -> list:
    n, pos = decode_uvarint(data, 0)
    out = []
    for _ in range(n):
        label, pos = decode_label(data, pos)
        out.append(label)
    return out


def _encode_slices(slices: dict[int, tuple[int, dict]]) -> bytes:
    """``rank -> (support contribution, {prefix vector: freq})``."""
    buf = bytearray()
    encode_uvarint(len(slices), buf)
    for rank in sorted(slices):
        support, prefixes = slices[rank]
        encode_uvarint(rank, buf)
        encode_uvarint(support, buf)
        encode_uvarint(len(prefixes), buf)
        for vec in sorted(prefixes):
            encode_uvarint(len(vec), buf)
            for p in vec:
                encode_uvarint(p, buf)
            encode_uvarint(prefixes[vec], buf)
    return bytes(buf)


def _decode_slices(data: bytes) -> dict[int, tuple[int, dict]]:
    n, pos = decode_uvarint(data, 0)
    out: dict[int, tuple[int, dict]] = {}
    for _ in range(n):
        rank, pos = decode_uvarint(data, pos)
        support, pos = decode_uvarint(data, pos)
        n_vecs, pos = decode_uvarint(data, pos)
        prefixes: dict = {}
        for _ in range(n_vecs):
            length, pos = decode_uvarint(data, pos)
            vec = []
            for _ in range(length):
                p, pos = decode_uvarint(data, pos)
                vec.append(p)
            freq, pos = decode_uvarint(data, pos)
            prefixes[tuple(vec)] = freq
        out[rank] = (support, prefixes)
    return out


def _encode_results(pairs: list[tuple[tuple[int, ...], int]]) -> bytes:
    buf = bytearray()
    encode_uvarint(len(pairs), buf)
    for ranks, support in pairs:
        encode_uvarint(len(ranks), buf)
        for r in ranks:
            encode_uvarint(r, buf)
        encode_uvarint(support, buf)
    return bytes(buf)


def _decode_results(data: bytes) -> list[tuple[tuple[int, ...], int]]:
    n, pos = decode_uvarint(data, 0)
    out = []
    for _ in range(n):
        k, pos = decode_uvarint(data, pos)
        ranks = []
        for _ in range(k):
            r, pos = decode_uvarint(data, pos)
            ranks.append(r)
        support, pos = decode_uvarint(data, pos)
        out.append((tuple(ranks), support))
    return out


# ---------------------------------------------------------------------------
# node-local computation
# ---------------------------------------------------------------------------
def _local_slices(partition, rank_table: RankTable) -> dict[int, tuple[int, dict]]:
    """Each rank's (support contribution, prefix table) from local data.

    A transaction with ranks ``r1 < ... < rk`` contributes, for every
    ``ri``, support 1 and the prefix ``(r1..r_{i-1})`` — exactly what the
    sequential sweep's migration accumulates globally.  Identical encoded
    transactions are aggregated first.
    """
    vectors: dict[tuple[int, ...], int] = {}
    for t in partition:
        ranks = rank_table.encode_itemset(t, skip_unknown=True)
        if ranks:
            vec = position.encode(ranks)
            vectors[vec] = vectors.get(vec, 0) + 1
    slices: dict[int, tuple[int, dict]] = {}
    for vec, freq in vectors.items():
        ranks = position.decode(vec)
        for i, rank in enumerate(ranks):
            support, prefixes = slices.get(rank, (0, {}))
            support += freq
            if i:
                prefix = vec[:i]
                prefixes[prefix] = prefixes.get(prefix, 0) + freq
            slices[rank] = (support, prefixes)
    return slices


def _mine_owned(
    owned: dict[int, tuple[int, dict]], min_support: int, max_len: int | None
) -> list[tuple[tuple[int, ...], int]]:
    results: list[tuple[tuple[int, ...], int]] = []

    def emit(itemset: tuple[int, ...], support: int) -> None:
        results.append((tuple(sorted(itemset)), support))

    for rank in sorted(owned, reverse=True):
        support, prefixes = owned[rank]
        if support < min_support:
            continue
        emit((rank,), support)
        if prefixes and (max_len is None or max_len > 1):
            buckets = build_conditional_buckets(prefixes, min_support)
            if buckets:
                _mine(buckets, (rank,), min_support, emit, max_len)
    return results


class _NodeState:
    __slots__ = ("partition", "min_support", "max_len", "rank_table", "owned", "results")

    def __init__(self, partition, min_support, max_len):
        self.partition = partition
        self.min_support = min_support
        self.max_len = max_len
        self.rank_table: RankTable | None = None
        self.owned: dict[int, tuple[int, dict]] = {}
        self.results: list = []


def _program(ctx, superstep, state: _NodeState):
    n_nodes = ctx.n_nodes
    if superstep == 0:
        ctx.send(0, _encode_labelled_counts(item_supports(state.partition)))
        return state

    if superstep == 1:
        if ctx.node_id == 0:
            totals: dict = {}
            for _, payload in ctx.inbox():
                for label, count in _decode_labelled_counts(payload).items():
                    totals[label] = totals.get(label, 0) + count
            frequent = sorted(
                (l for l, c in totals.items() if c >= state.min_support),
                key=sort_key,
            )
            state.rank_table = RankTable(frequent)
            ctx.broadcast(_encode_labels(frequent))
        return state

    if superstep == 2:
        if ctx.node_id != 0:
            (_, payload), = ctx.inbox()
            state.rank_table = RankTable(_decode_labels(payload))
        slices = _local_slices(state.partition, state.rank_table)
        per_owner: dict[int, dict[int, tuple[int, dict]]] = {}
        for rank, entry in slices.items():
            owner = owner_of_rank(rank, n_nodes)
            if owner == ctx.node_id:
                state.owned[rank] = entry  # never touches the wire
            else:
                per_owner.setdefault(owner, {})[rank] = entry
        for owner, owner_slices in per_owner.items():
            ctx.send(owner, _encode_slices(owner_slices))
        return state

    if superstep == 3:
        for _, payload in ctx.inbox():
            for rank, (support, prefixes) in _decode_slices(payload).items():
                have_support, have_prefixes = state.owned.get(rank, (0, {}))
                for vec, freq in prefixes.items():
                    have_prefixes[vec] = have_prefixes.get(vec, 0) + freq
                state.owned[rank] = (have_support + support, have_prefixes)
        mined = _mine_owned(state.owned, state.min_support, state.max_len)
        if ctx.node_id == 0:
            state.results.extend(mined)
        else:
            ctx.send(0, _encode_results(mined))
        return state

    if superstep == 4 and ctx.node_id == 0:
        for _, payload in ctx.inbox():
            state.results.extend(_decode_results(payload))
        return state

    return SimCluster.DONE


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def mine_distributed(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    n_nodes: int = 4,
    max_len: int | None = None,
) -> tuple[list[tuple], ClusterStats, RankTable]:
    """Mine on a simulated ``n_nodes`` cluster.

    Returns ``(itemset pairs as (sorted item tuple, support), cluster
    stats, the global rank table)``.  Results are exactly those of the
    serial conditional miner (tests assert this); the stats carry the
    communication volume and modelled parallel makespan.
    """
    db = [frozenset(t) for t in transactions]
    if min_support < 1:
        raise ParallelExecutionError("min_support must be >= 1")
    from repro.baselines.partition import split_database

    partitions = split_database(db, n_nodes) if db else []
    while len(partitions) < n_nodes:
        partitions.append([])
    cluster = SimCluster(n_nodes)
    states = [_NodeState(part, min_support, max_len) for part in partitions]
    final = cluster.run(_program, states)
    root = final[0]
    table = root.rank_table if root.rank_table is not None else RankTable([])
    decoded = [
        (tuple(sorted(table.decode_ranks(ranks), key=sort_key)), support)
        for ranks, support in root.results
    ]
    decoded.sort(key=lambda pair: (len(pair[0]), [sort_key(i) for i in pair[0]]))
    return decoded, cluster.stats, table
