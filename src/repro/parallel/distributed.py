"""Distributed PLT mining on the simulated cluster — crash-and-loss tolerant.

An *intelligent-data-distribution* scheme (after Han, Karypis & Kumar,
SIGMOD '97 — the paper's reference [15]) adapted to the PLT's partition
criterion: itemsets are owned by the node that owns their **maximal
item**, and a transaction's contribution to item ``j``'s conditional
database is exactly its prefix before ``j`` — computable locally from the
position vector with no coordination.

The fault-free dataflow is unchanged from the classic scheme:

1. every node counts item supports over its private partition and sends
   the labelled counter to node 0 (the coordinator);
2. node 0 reduces the counters, fixes the global rank table (frequent
   items only, lexicographic order) and broadcasts it;
3. every node encodes its transactions as position vectors, slices its
   *local* conditional databases per rank, and sends each ownership
   **slot**'s slice bundle to the slot's current owner (its own slot never
   touches the wire);
4. owners merge the received bundles with their own, check global
   support, mine each owned item's conditional PLT **entirely locally**
   (Algorithm 3's recursion) and send results to node 0;
5. node 0 concatenates — itemsets are partitioned by maximal item, so no
   deduplication or reconciliation is needed.

What is new is that none of these steps assumes a working machine.  The
protocol is a message-driven state machine, not a fixed superstep script,
and it survives the full failure model of
:class:`~repro.parallel.faults.FaultPlan`:

* **Lost / corrupted / duplicated / delayed messages** — every payload
  crosses the wire in CRC-framed, acked, retransmitted frames
  (:class:`~repro.robustness.channel.ReliableChannel`); corruption is
  detected and looks like loss, duplicates are filtered by sequence
  number, and the application layer additionally deduplicates by data
  **origin** so even replayed protocol steps merge exactly once.
* **Crashed nodes** — input partitions are durable
  (:class:`~repro.robustness.checkpoint.CheckpointStore`, a stand-in for
  the cluster filesystem), and nodes checkpoint their computed slice
  tables and mined per-slot results as they go.  When retransmits to a
  node exhaust their retry budget it is declared dead and reported to the
  coordinator, which reassigns every ownership slot and data-origin duty
  the dead node held to a live **successor** and broadcasts the new
  actor map.  The successor replays the dead node's duties from stable
  storage (checkpointed slices if present, else the durable partition)
  and peers re-route the bundles they had addressed to the corpse.
  Because merging is idempotent per ``(origin, slot)`` and mining is
  deterministic, the final itemsets are identical to the fault-free run.
* **Coordinator loss** — node 0 is the one node the scheme cannot lose
  (standard master/worker assumption); its death raises
  :class:`~repro.errors.CrashedNodeError` instead of wrong results.

All payloads cross the simulator as real serialized bytes, so
:class:`~repro.parallel.simcluster.ClusterStats` reports the true
communication volume of the scheme including the resilience overhead
(benchmark B15).  Item labels must be ``int`` or ``str`` (the same
restriction as the PLT codec).  See ``docs/FAULT_TOLERANCE.md`` for the
failure model, the recovery walkthrough, and the tuning knobs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.compress.plt_codec import decode_label, encode_label
from repro.compress.varint import decode_uvarint, encode_uvarint
from repro.core import position
from repro.core.conditional import mine_conditional_block
from repro.core.rank import RankTable, sort_key
from repro.data.transaction_db import item_supports
from repro.errors import (
    CodecError,
    CrashedNodeError,
    InvalidParameterError,
    MiningInterrupted,
    ParallelExecutionError,
)
from repro.parallel.backend import create_backend
from repro.parallel.faults import FaultPlan
from repro.parallel.simcluster import ClusterStats, SimCluster
from repro.robustness.channel import ReliableChannel
from repro.robustness.checkpoint import CheckpointStore
from repro.robustness.governor import CancellationToken, MiningBudget, ResourceGovernor
from repro.robustness.retry import RetryPolicy

__all__ = ["mine_distributed", "owner_of_rank", "COORDINATOR"]

Item = Hashable

#: The coordinator node id (assumed reliable; see module docstring).
COORDINATOR = 0

#: Supersteps the coordinator waits between liveness probes of silent peers.
PROBE_INTERVAL = 4


def owner_of_rank(rank: int, n_nodes: int) -> int:
    """Static ownership **slot** of a rank: round-robin (cheap, balanced).

    Slots are fixed for the lifetime of a run; the *node* currently acting
    for a slot is ``actor[slot]`` and changes only on failover.
    """
    return (rank - 1) % n_nodes


# ---------------------------------------------------------------------------
# payload codecs (explicit bytes on the wire)
# ---------------------------------------------------------------------------
def _check_count(n: int, data, pos: int) -> None:
    """Reject length headers no well-formed stream could satisfy."""
    if n > len(data) - pos:
        raise CodecError(f"count {n} exceeds remaining {len(data) - pos} bytes")


def _encode_labelled_counts(counts: dict) -> bytes:
    buf = bytearray()
    encode_uvarint(len(counts), buf)
    for label in sorted(counts, key=sort_key):
        encode_label(label, buf)
        encode_uvarint(counts[label], buf)
    return bytes(buf)


def _decode_labelled_counts(data: bytes) -> dict:
    n, pos = decode_uvarint(data, 0)
    _check_count(n, data, pos)
    out: dict = {}
    for _ in range(n):
        label, pos = decode_label(data, pos)
        count, pos = decode_uvarint(data, pos)
        out[label] = count
    return out


def _encode_labels(labels: Iterable) -> bytes:
    labels = list(labels)
    buf = bytearray()
    encode_uvarint(len(labels), buf)
    for label in labels:
        encode_label(label, buf)
    return bytes(buf)


def _decode_labels_at(data: bytes, pos: int) -> tuple[list, int]:
    n, pos = decode_uvarint(data, pos)
    _check_count(n, data, pos)
    out = []
    for _ in range(n):
        label, pos = decode_label(data, pos)
        out.append(label)
    return out, pos


def _decode_labels(data: bytes) -> list:
    return _decode_labels_at(data, 0)[0]


def _encode_slices(slices: dict[int, tuple[int, dict]]) -> bytes:
    """``rank -> (support contribution, {prefix vector: freq})``."""
    buf = bytearray()
    encode_uvarint(len(slices), buf)
    for rank in sorted(slices):
        support, prefixes = slices[rank]
        encode_uvarint(rank, buf)
        encode_uvarint(support, buf)
        encode_uvarint(len(prefixes), buf)
        for vec in sorted(prefixes):
            encode_uvarint(len(vec), buf)
            for p in vec:
                encode_uvarint(p, buf)
            encode_uvarint(prefixes[vec], buf)
    return bytes(buf)


def _decode_slices(data: bytes) -> dict[int, tuple[int, dict]]:
    n, pos = decode_uvarint(data, 0)
    _check_count(n, data, pos)
    out: dict[int, tuple[int, dict]] = {}
    for _ in range(n):
        rank, pos = decode_uvarint(data, pos)
        support, pos = decode_uvarint(data, pos)
        n_vecs, pos = decode_uvarint(data, pos)
        _check_count(n_vecs, data, pos)
        prefixes: dict = {}
        for _ in range(n_vecs):
            length, pos = decode_uvarint(data, pos)
            _check_count(length, data, pos)
            vec = []
            for _ in range(length):
                p, pos = decode_uvarint(data, pos)
                vec.append(p)
            freq, pos = decode_uvarint(data, pos)
            prefixes[tuple(vec)] = freq
        out[rank] = (support, prefixes)
    return out


def _encode_results(pairs: list[tuple[tuple[int, ...], int]]) -> bytes:
    buf = bytearray()
    encode_uvarint(len(pairs), buf)
    for ranks, support in pairs:
        encode_uvarint(len(ranks), buf)
        for r in ranks:
            encode_uvarint(r, buf)
        encode_uvarint(support, buf)
    return bytes(buf)


def _decode_results(data: bytes) -> list[tuple[tuple[int, ...], int]]:
    n, pos = decode_uvarint(data, 0)
    _check_count(n, data, pos)
    out = []
    for _ in range(n):
        k, pos = decode_uvarint(data, pos)
        _check_count(k, data, pos)
        ranks = []
        for _ in range(k):
            r, pos = decode_uvarint(data, pos)
            ranks.append(r)
        support, pos = decode_uvarint(data, pos)
        out.append((tuple(ranks), support))
    return out


def _encode_partition(partition) -> bytes:
    """Serialize a data partition for stable storage (durable input)."""
    buf = bytearray()
    encode_uvarint(len(partition), buf)
    for t in partition:
        labels = sorted(t, key=sort_key)
        encode_uvarint(len(labels), buf)
        for label in labels:
            encode_label(label, buf)
    return bytes(buf)


def _decode_partition(data: bytes) -> list[frozenset]:
    n, pos = decode_uvarint(data, 0)
    _check_count(n, data, pos)
    out = []
    for _ in range(n):
        k, pos = decode_uvarint(data, pos)
        _check_count(k, data, pos)
        labels = []
        for _ in range(k):
            label, pos = decode_label(data, pos)
            labels.append(label)
        out.append(frozenset(labels))
    return out


# ---------------------------------------------------------------------------
# application message envelope (travels inside reliable-channel frames)
# ---------------------------------------------------------------------------
_MSG_COUNTS = 1
_MSG_RANKS = 2
_MSG_SLICES = 3
_MSG_RESULTS = 4
_MSG_DEAD = 5
_MSG_REASSIGN = 6
_MSG_FIN = 7
_MSG_PING = 8


def _msg_counts(origin: int, counts: dict) -> bytes:
    buf = bytearray([_MSG_COUNTS])
    encode_uvarint(origin, buf)
    return bytes(buf) + _encode_labelled_counts(counts)


def _msg_ranks(labels: list) -> bytes:
    return bytes([_MSG_RANKS]) + _encode_labels(labels)


def _msg_slices(origin: int, slot: int, slices: dict) -> bytes:
    buf = bytearray([_MSG_SLICES])
    encode_uvarint(origin, buf)
    encode_uvarint(slot, buf)
    return bytes(buf) + _encode_slices(slices)


def _msg_results(slot: int, pairs: list) -> bytes:
    buf = bytearray([_MSG_RESULTS])
    encode_uvarint(slot, buf)
    return bytes(buf) + _encode_results(pairs)


def _msg_dead(node: int) -> bytes:
    buf = bytearray([_MSG_DEAD])
    encode_uvarint(node, buf)
    return bytes(buf)


def _msg_reassign(actor: list[int], dead: set[int], labels: list | None) -> bytes:
    buf = bytearray([_MSG_REASSIGN, 1 if labels is not None else 0])
    if labels is not None:
        buf += _encode_labels(labels)
    encode_uvarint(len(actor), buf)
    for a in actor:
        encode_uvarint(a, buf)
    encode_uvarint(len(dead), buf)
    for d in sorted(dead):
        encode_uvarint(d, buf)
    return bytes(buf)


def _decode_msg(payload: bytes) -> tuple:
    """``payload -> (type, fields...)``; raises CodecError when malformed."""
    if not payload:
        raise CodecError("empty protocol message")
    mtype = payload[0]
    if mtype == _MSG_COUNTS:
        origin, pos = decode_uvarint(payload, 1)
        return (_MSG_COUNTS, origin, _decode_labelled_counts(payload[pos:]))
    if mtype == _MSG_RANKS:
        return (_MSG_RANKS, _decode_labels(payload[1:]))
    if mtype == _MSG_SLICES:
        origin, pos = decode_uvarint(payload, 1)
        slot, pos = decode_uvarint(payload, pos)
        return (_MSG_SLICES, origin, slot, _decode_slices(payload[pos:]))
    if mtype == _MSG_RESULTS:
        slot, pos = decode_uvarint(payload, 1)
        return (_MSG_RESULTS, slot, _decode_results(payload[pos:]))
    if mtype == _MSG_DEAD:
        node, _ = decode_uvarint(payload, 1)
        return (_MSG_DEAD, node)
    if mtype == _MSG_REASSIGN:
        if len(payload) < 2:
            raise CodecError("truncated REASSIGN")
        labels = None
        pos = 2
        if payload[1]:
            labels, pos = _decode_labels_at(payload, 2)
        n, pos = decode_uvarint(payload, pos)
        _check_count(n, payload, pos)
        actor = []
        for _ in range(n):
            a, pos = decode_uvarint(payload, pos)
            actor.append(a)
        k, pos = decode_uvarint(payload, pos)
        _check_count(k, payload, pos)
        dead = set()
        for _ in range(k):
            d, pos = decode_uvarint(payload, pos)
            dead.add(d)
        return (_MSG_REASSIGN, actor, dead, labels)
    if mtype == _MSG_FIN:
        return (_MSG_FIN,)
    if mtype == _MSG_PING:
        return (_MSG_PING,)
    raise CodecError(f"unknown protocol message type {mtype}")


# ---------------------------------------------------------------------------
# node-local computation
# ---------------------------------------------------------------------------
def _local_slices(partition, rank_table: RankTable) -> dict[int, tuple[int, dict]]:
    """Each rank's (support contribution, prefix table) from local data.

    A transaction with ranks ``r1 < ... < rk`` contributes, for every
    ``ri``, support 1 and the prefix ``(r1..r_{i-1})`` — exactly what the
    sequential sweep's migration accumulates globally.  Identical encoded
    transactions are aggregated first.
    """
    vectors: dict[tuple[int, ...], int] = {}
    for t in partition:
        ranks = rank_table.encode_itemset(t, skip_unknown=True)
        if ranks:
            vec = position.encode(ranks)
            vectors[vec] = vectors.get(vec, 0) + 1
    slices: dict[int, tuple[int, dict]] = {}
    for vec, freq in vectors.items():
        ranks = position.decode(vec)
        for i, rank in enumerate(ranks):
            support, prefixes = slices.get(rank, (0, {}))
            support += freq
            if i:
                prefix = vec[:i]
                prefixes[prefix] = prefixes.get(prefix, 0) + freq
            slices[rank] = (support, prefixes)
    return slices


def _mine_owned(
    owned: dict[int, tuple[int, dict]],
    min_support: int,
    max_len: int | None,
    governor: ResourceGovernor | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    results: list[tuple[tuple[int, ...], int]] = []

    # the path engine emits itemsets already sorted ascending — append raw
    if governor is None:
        def emit(itemset: tuple[int, ...], support: int) -> None:
            results.append((itemset, support))
    else:
        def emit(itemset: tuple[int, ...], support: int) -> None:
            governor.note_itemsets()
            results.append((itemset, support))

    for rank in sorted(owned, reverse=True):
        support, prefixes = owned[rank]
        if support < min_support:
            continue
        emit((rank,), support)
        if prefixes and (max_len is None or max_len > 1):
            mine_conditional_block(
                prefixes, rank, min_support, emit, max_len, governor=governor
            )
    return results


def _merge_bundles(by_origin: Mapping[int, dict]) -> dict[int, tuple[int, dict]]:
    """Merge per-origin slice bundles (origin order for determinism)."""
    owned: dict[int, tuple[int, dict]] = {}
    for origin in sorted(by_origin):
        for rank, (support, prefixes) in by_origin[origin].items():
            have_support, have_prefixes = owned.get(rank, (0, {}))
            for vec, freq in prefixes.items():
                have_prefixes[vec] = have_prefixes.get(vec, 0) + freq
            owned[rank] = (have_support + support, have_prefixes)
    return owned


# ---------------------------------------------------------------------------
# the fault-tolerant node program
# ---------------------------------------------------------------------------
class _Node:
    """Per-node protocol state machine (volatile; crashes erase it)."""

    def __init__(
        self,
        node_id: int,
        n_nodes: int,
        partition,
        min_support: int,
        max_len: int | None,
        store: CheckpointStore,
        retry: RetryPolicy | None,
        governor: ResourceGovernor | None = None,
    ):
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.partition = partition
        self.min_support = min_support
        self.max_len = max_len
        self.store = store
        self.governor = governor
        self.channel = ReliableChannel(node_id, retry=retry)
        #: slot -> node currently acting for it (identity until failover)
        self.actor = list(range(n_nodes))
        self.dead: set[int] = set()
        self.rank_table: RankTable | None = None
        self.fin = False
        # duty progress, keyed by data origin
        self.counts_sent: set[int] = set()
        self.slices_by_origin: dict[int, dict[int, tuple[int, dict]]] = {}
        self.bundle_sent: dict[tuple[int, int], int] = {}  # (origin, slot) -> dest
        # owner-side state, keyed by ownership slot
        self.bundles: dict[int, dict[int, dict]] = {}  # slot -> origin -> slices
        self.results_sent: set[int] = set()
        # coordinator-only state
        self.counts_by_origin: dict[int, dict] = {}
        self.results_by_slot: dict[int, list] = {}
        self.waiting = 0

    # -- helpers -----------------------------------------------------------
    def _is_coord(self) -> bool:
        return self.node_id == COORDINATOR

    def duties(self) -> list[int]:
        """Data origins this node currently acts for (itself + adopted)."""
        return [o for o in range(self.n_nodes) if self.actor[o] == self.node_id]

    def _send(self, ctx, superstep: int, dest: int, payload: bytes) -> None:
        self.channel.send(ctx, superstep, dest, payload)

    def _partition_of(self, origin: int):
        if origin == self.node_id:
            return self.partition
        blob = self.store.get(origin, "partition")
        if blob is None:
            raise ParallelExecutionError(
                f"node {self.node_id} cannot recover node {origin}: "
                "no durable partition in the checkpoint store",
                node_id=self.node_id,
            )
        return _decode_partition(blob)

    def _slices_of(self, ctx, origin: int) -> dict[int, tuple[int, dict]]:
        """This origin's full slice table: memory, checkpoint, or replay."""
        slices = self.slices_by_origin.get(origin)
        if slices is not None:
            return slices
        assert self.rank_table is not None
        if origin == self.node_id:
            slices = _local_slices(self.partition, self.rank_table)
            self.store.save(origin, "slices", _encode_slices(slices))
            ctx.stats.checkpoint_writes += 1
        else:
            # replaying a dead peer's superstep of work from stable storage
            ctx.stats.supersteps_replayed += 1
            blob = self.store.get(origin, "slices")
            if blob is not None:
                ctx.stats.checkpoint_reads += 1
                slices = _decode_slices(blob)
            else:
                slices = _local_slices(self._partition_of(origin), self.rank_table)
                ctx.stats.checkpoint_reads += 1  # partition replay read
        self.slices_by_origin[origin] = slices
        return slices

    def _bundle(self, origin: int, slot: int) -> dict[int, tuple[int, dict]]:
        slices = self.slices_by_origin[origin]
        return {
            rank: entry
            for rank, entry in slices.items()
            if owner_of_rank(rank, self.n_nodes) == slot
        }

    def _accept_bundle(self, origin: int, slot: int, slices: dict) -> None:
        per_origin = self.bundles.setdefault(slot, {})
        if origin not in per_origin:
            per_origin[origin] = slices

    # -- incoming messages -------------------------------------------------
    def _handle(self, ctx, superstep: int, src: int, payload: bytes) -> None:
        msg = _decode_msg(payload)
        mtype = msg[0]
        self.waiting = 0
        if mtype == _MSG_COUNTS and self._is_coord():
            _, origin, counts = msg
            self.counts_by_origin.setdefault(origin, counts)
        elif mtype == _MSG_RANKS:
            if self.rank_table is None:
                self.rank_table = RankTable(msg[1])
        elif mtype == _MSG_SLICES:
            _, origin, slot, slices = msg
            self._accept_bundle(origin, slot, slices)
        elif mtype == _MSG_RESULTS and self._is_coord():
            _, slot, pairs = msg
            self.results_by_slot.setdefault(slot, pairs)
        elif mtype == _MSG_DEAD and self._is_coord():
            self._initiate_failover(ctx, superstep, msg[1])
        elif mtype == _MSG_REASSIGN:
            _, actor, dead, labels = msg
            if labels is not None and self.rank_table is None:
                self.rank_table = RankTable(labels)
            self.actor = list(actor)
            for d in dead:
                self.dead.add(d)
                self.channel.mark_dead(d, quiet=True)
            self._reroute_bundles(ctx, superstep)
        elif mtype == _MSG_FIN:
            self.fin = True
        # _MSG_PING needs no reply beyond the channel-level ack

    def _reroute_bundles(self, ctx, superstep: int) -> None:
        """Re-send every bundle whose slot changed hands under our feet."""
        for (origin, slot), dest in list(self.bundle_sent.items()):
            new_dest = self.actor[slot]
            if new_dest == dest:
                continue
            self.bundle_sent[(origin, slot)] = new_dest
            bundle = self._bundle(origin, slot)
            if new_dest == self.node_id:
                self._accept_bundle(origin, slot, bundle)
            else:
                self._send(ctx, superstep, new_dest, _msg_slices(origin, slot, bundle))

    # -- failure handling --------------------------------------------------
    def _peer_dead(self, ctx, superstep: int, peer: int) -> None:
        # the channel exhausted its retry schedule: that many probes went
        # unanswered, and from this node's view the peer is now dead
        ctx.stats.heartbeats_missed += self.channel.retry.max_retries
        ctx.stats.workers_declared_dead += 1
        if peer == COORDINATOR:
            raise CrashedNodeError(
                f"coordinator node {COORDINATOR} stopped acknowledging "
                f"node {self.node_id}; distributed mining cannot recover "
                "from coordinator loss",
                node_id=self.node_id,
                superstep=superstep,
            )
        if self._is_coord():
            self._initiate_failover(ctx, superstep, peer)
        else:
            self._send(ctx, superstep, COORDINATOR, _msg_dead(peer))

    def _initiate_failover(self, ctx, superstep: int, dead_node: int) -> None:
        """Coordinator only: reassign the corpse's slots and broadcast."""
        if dead_node in self.dead or dead_node == COORDINATOR:
            return
        self.dead.add(dead_node)
        self.channel.mark_dead(dead_node, quiet=True)
        ctx.stats.failovers += 1
        if self.fin:
            # nothing left to reassign; best-effort FIN in case the peer
            # was falsely declared dead and is still waiting for it
            self.channel.send_unreliable(ctx, dead_node, bytes([_MSG_FIN]))
            return
        live = [n for n in range(self.n_nodes) if n not in self.dead]
        successor = next(
            (n for n in range(dead_node + 1, dead_node + self.n_nodes) if (n % self.n_nodes) in live),
            COORDINATOR,
        ) % self.n_nodes
        moved_slots = set()
        for slot in range(self.n_nodes):
            if self.actor[slot] == dead_node:
                self.actor[slot] = successor
                moved_slots.add(slot)
        if self.rank_table is not None and moved_slots:
            n_ranks = len(self.rank_table.items())
            ctx.stats.ranks_resharded += sum(
                1
                for rank in range(1, n_ranks + 1)
                if owner_of_rank(rank, self.n_nodes) in moved_slots
            )
        labels = self.rank_table.items() if self.rank_table is not None else None
        payload = _msg_reassign(self.actor, self.dead, labels)
        for node in live:
            if node != self.node_id:
                self._send(ctx, superstep, node, payload)
        self._reroute_bundles(ctx, superstep)

    # -- forward progress --------------------------------------------------
    def _progress(self, ctx, superstep: int) -> None:
        me = self.node_id
        if self.governor is not None:
            # one shared governor across the in-process cluster: any
            # node's step can observe the deadline/token trip
            self.governor.tick()
        # 1) ship item counts for every duty until the rank table is fixed
        if self.rank_table is None:
            for origin in self.duties():
                if origin in self.counts_sent:
                    continue
                self.counts_sent.add(origin)
                counts = item_supports(self._partition_of(origin))
                if self._is_coord():
                    self.counts_by_origin.setdefault(origin, counts)
                else:
                    self._send(ctx, superstep, COORDINATOR, _msg_counts(origin, counts))
        # 2) coordinator: reduce counts, fix and broadcast the rank table
        if (
            self._is_coord()
            and self.rank_table is None
            and len(self.counts_by_origin) == self.n_nodes
        ):
            totals: dict = {}
            for counts in self.counts_by_origin.values():
                for label, count in counts.items():
                    totals[label] = totals.get(label, 0) + count
            frequent = sorted(
                (l for l, c in totals.items() if c >= self.min_support), key=sort_key
            )
            self.rank_table = RankTable(frequent)
            payload = _msg_ranks(frequent)
            for node in range(self.n_nodes):
                if node != me and node not in self.dead:
                    self._send(ctx, superstep, node, payload)
        # 3) slice local conditional databases and ship bundles per slot
        if self.rank_table is not None:
            for origin in self.duties():
                if origin in self.slices_by_origin:
                    continue
                self._slices_of(ctx, origin)
                for slot in range(self.n_nodes):
                    dest = self.actor[slot]
                    self.bundle_sent[(origin, slot)] = dest
                    bundle = self._bundle(origin, slot)
                    if dest == me:
                        self._accept_bundle(origin, slot, bundle)
                    else:
                        self._send(ctx, superstep, dest, _msg_slices(origin, slot, bundle))
        # 4) mine every owned slot whose bundles are complete
        for slot in range(self.n_nodes):
            if self.actor[slot] != me or slot in self.results_sent:
                continue
            per_origin = self.bundles.get(slot, {})
            if len(per_origin) < self.n_nodes:
                continue
            blob = self.store.get(slot, "results")
            if blob is not None:
                ctx.stats.checkpoint_reads += 1
                pairs = _decode_results(blob)
            else:
                owned = _merge_bundles(per_origin)
                pairs = _mine_owned(
                    owned, self.min_support, self.max_len, governor=self.governor
                )
                self.store.save(slot, "results", _encode_results(pairs))
                ctx.stats.checkpoint_writes += 1
            self.results_sent.add(slot)
            if self._is_coord():
                self.results_by_slot.setdefault(slot, pairs)
            else:
                self._send(ctx, superstep, COORDINATOR, _msg_results(slot, pairs))
        # 5) coordinator: all slots mined -> tell everyone to wind down
        if self._is_coord() and not self.fin and len(self.results_by_slot) == self.n_nodes:
            self.fin = True
            for node in range(self.n_nodes):
                if node == me:
                    continue
                if node in self.dead:
                    self.channel.send_unreliable(ctx, node, bytes([_MSG_FIN]))
                else:
                    self._send(ctx, superstep, node, bytes([_MSG_FIN]))
        # 6) probe peers we are waiting on; unanswered pings expose crashes
        if not self.fin:
            self._probe(ctx, superstep)

    def _awaited_peers(self) -> set[int]:
        """Peers whose data this node still needs to make progress.

        Every node waits on the actors of origins whose slice bundles are
        missing for slots it owns (a crashed origin would otherwise hang
        its owners silently).  The coordinator additionally waits on
        counters during the counts phase and on owners for missing slot
        results.
        """
        awaited: set[int] = set()
        if self._is_coord() and self.rank_table is None:
            awaited |= {
                self.actor[o]
                for o in range(self.n_nodes)
                if o not in self.counts_by_origin
            }
        if self.rank_table is not None:
            for slot in range(self.n_nodes):
                if self.actor[slot] == self.node_id:
                    if slot not in self.results_sent:
                        per_origin = self.bundles.get(slot, {})
                        awaited |= {
                            self.actor[o]
                            for o in range(self.n_nodes)
                            if o not in per_origin
                        }
                elif self._is_coord() and slot not in self.results_by_slot:
                    awaited.add(self.actor[slot])
        awaited.discard(self.node_id)
        if not self._is_coord():
            # Never ping the coordinator: it retransmits its own frames, so
            # a bundle it owes us needs no probing, and a lost ping must not
            # escalate into a (fatal, unrecoverable) coordinator-death call.
            awaited.discard(COORDINATOR)
        return awaited - self.channel.dead_peers

    def _probe(self, ctx, superstep: int) -> None:
        awaited = self._awaited_peers()
        if not awaited:
            self.waiting = 0
            return
        self.waiting += 1
        if self.waiting < PROBE_INTERVAL:
            return
        self.waiting = 0
        for target in sorted(awaited):
            # an in-flight frame to the target already doubles as a probe
            if not self.channel.has_unacked(target):
                ctx.stats.heartbeats_sent += 1
                self._send(ctx, superstep, target, bytes([_MSG_PING]))

    # -- the BSP step ------------------------------------------------------
    def step(self, ctx, superstep: int):
        for src, payload in self.channel.poll(ctx, superstep):
            self._handle(ctx, superstep, src, payload)
        self._progress(ctx, superstep)
        self.channel.flush(ctx, superstep)
        for peer in self.channel.take_dead_peers():
            self._peer_dead(ctx, superstep, peer)
        if self.fin and self.channel.idle():
            return SimCluster.DONE
        return self


def _ft_program(ctx, superstep, state: _Node):
    return state.step(ctx, superstep)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def mine_distributed(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    n_nodes: int = 4,
    max_len: int | None = None,
    fault_plan: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    checkpoint_store: CheckpointStore | None = None,
    max_supersteps: int = 10_000,
    budget: MiningBudget | None = None,
    cancel: CancellationToken | None = None,
    backend: str = "sim",
    backend_options: Mapping | None = None,
) -> tuple[list[tuple], ClusterStats, RankTable]:
    """Mine on an ``n_nodes`` cluster backend, optionally under faults.

    Returns ``(itemset pairs as (sorted item tuple, support), cluster
    stats, the global rank table)``.  Results are exactly those of the
    serial conditional miner — including under any recoverable
    :class:`~repro.parallel.faults.FaultPlan` (message loss, corruption,
    duplication, delay, worker-node crashes); the chaos suite asserts
    this.  Unrecoverable faults (coordinator loss, every node dead,
    pathological total message loss) raise
    :class:`~repro.errors.CrashedNodeError` /
    :class:`~repro.errors.ParallelExecutionError` rather than returning
    wrong results.

    ``backend`` picks the cluster implementation
    (:data:`~repro.parallel.backend.BACKENDS`): ``"sim"`` (default) runs
    the protocol on the deterministic in-process simulator; ``"process"``
    runs the *same node program* on real worker processes over localhost
    TCP (:class:`~repro.parallel.processcluster.ProcessCluster`), where
    fault-plan crashes become real ``SIGKILL``\\ s and failover replays
    from a file-backed checkpoint store.  The process backend needs
    file-backed stable storage: pass ``CheckpointStore(path=...)`` or
    leave ``checkpoint_store=None`` to get a run-scoped temporary
    directory.  ``backend_options`` are forwarded to the backend
    constructor (e.g. ``heartbeat_interval``, ``detection``).

    ``retry`` tunes the ack/retransmit schedule (supersteps),
    ``checkpoint_store`` supplies the stable storage used for durable
    inputs and recovery state (a fresh in-memory store by default on the
    sim backend), and the stats carry communication volume, modelled
    parallel makespan, and full fault/recovery/liveness accounting.

    ``budget``/``cancel`` govern the run: the simulated cluster is
    in-process, so one shared :class:`ResourceGovernor` is observed by
    every node's step and mining loop.  A trip raises
    :class:`~repro.errors.BudgetExceeded` / :class:`~repro.errors.Cancelled`
    whose ``partial`` holds the decoded pairs of every ownership slot the
    coordinator had already collected — complete slots only, exact
    supports — and ``progress["slots_complete"]`` lists those slots.
    Governors are shared in-process objects, so they are only available
    on the sim backend; the process backend rejects them.
    """
    db = [frozenset(t) for t in transactions]
    if min_support < 1:
        raise ParallelExecutionError("min_support must be >= 1")
    from repro.baselines.partition import split_database

    partitions = split_database(db, n_nodes) if db else []
    while len(partitions) < n_nodes:
        partitions.append([])
    tmpdir = None
    store = checkpoint_store
    if backend == "process":
        if budget is not None or cancel is not None:
            raise InvalidParameterError(
                "budget/cancel are not supported on the process backend: a "
                "governor is a shared in-process object and cannot span "
                "worker processes; use backend='sim' for governed runs"
            )
        if store is None:
            import tempfile

            tmpdir = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
            store = CheckpointStore(tmpdir.name)
        elif store.path is None:
            raise InvalidParameterError(
                "the process backend needs a file-backed CheckpointStore "
                "(CheckpointStore(path=...)) so worker processes share "
                "stable storage across real crashes"
            )
    elif store is None:
        store = CheckpointStore()
    for node_id, part in enumerate(partitions):
        store.save(node_id, "partition", _encode_partition(part))
    governor = None
    if budget is not None or cancel is not None:
        governor = ResourceGovernor(budget, cancel).start()
    cluster = create_backend(
        backend,
        n_nodes,
        fault_plan=fault_plan,
        max_supersteps=max_supersteps,
        **dict(backend_options or {}),
    )
    states = [
        _Node(i, n_nodes, part, min_support, max_len, store, retry, governor)
        for i, part in enumerate(partitions)
    ]
    coordinator_node: _Node = states[COORDINATOR]

    def _decode_slots(node: _Node) -> tuple[list[tuple], RankTable]:
        tbl = node.rank_table if node.rank_table is not None else RankTable([])
        raw: list[tuple[tuple[int, ...], int]] = []
        for slot in sorted(node.results_by_slot):
            raw.extend(node.results_by_slot[slot])
        out = [
            (tuple(sorted(tbl.decode_ranks(ranks), key=sort_key)), support)
            for ranks, support in raw
        ]
        out.sort(key=lambda pair: (len(pair[0]), [sort_key(i) for i in pair[0]]))
        return out, tbl

    try:
        final = cluster.run(_ft_program, states)
    except MiningInterrupted as exc:
        # the coordinator's results_by_slot holds only fully mined slots,
        # so every salvaged pair carries its exact global support
        decoded, _ = _decode_slots(coordinator_node)
        exc.partial = decoded
        exc.progress["slots_complete"] = sorted(coordinator_node.results_by_slot)
        raise
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
    root: _Node | None = final[COORDINATOR]
    if root is None:
        # only a real backend can lose a final state: the coordinator
        # process died after voting DONE but before shipping its state
        raise CrashedNodeError(
            f"coordinator node {COORDINATOR} was lost before reporting "
            "results; distributed mining cannot recover from coordinator "
            "loss",
            node_id=COORDINATOR,
        )
    decoded, table = _decode_slots(root)
    return decoded, cluster.stats, table
