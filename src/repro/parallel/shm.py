"""Zero-copy shared-memory transport for the multiprocessing executors.

The pickle transport ships every task's conditional database (or vector
slice) through the pool's result pipe — for a 5k-transaction database
that is hundreds of kilobytes per dispatch round, and profiling shows the
copy, not the mining, dominating wall clock on moderate databases.  This
transport eliminates the copy instead of tuning it:

1. the driver lowers the PLT once into a
   :class:`~repro.core.flat.FlatPLT` and places its columns in a single
   ``multiprocessing.shared_memory`` segment;
2. worker processes attach on pool start (a page-table mapping, not a
   copy) and cache the attached view per segment name;
3. tasks shrink to ``(meta, lo, hi, ...)`` tuples — a few hundred bytes —
   and workers mine *index ranges* straight off the shared columns:

   * conditional tasks are top-level **rank ranges** ``[lo, hi)`` run
     through :func:`~repro.core.conditional.mine_conditional_flat_range`;
     itemsets partition exactly by maximal rank, so per-range results
     concatenate with no reconciliation;
   * top-down tasks are stored-**path slices** ``[start, end)`` run
     through the packed byte engine
     (:func:`~repro.core.topdown.topdown_flat_slice`); partial tables
     merge by addition, and workers drop their (redundant, widest)
     length-1 level — the driver reconstitutes it exactly from the
     vectorised :meth:`FlatPLT.rank_supports` column pass.

Segment lifecycle: the driver owns the segment and guarantees
``close``/``unlink`` in a ``finally`` — success, worker crash, budget
trip and cancellation all pass through it, so no ``/dev/shm`` entry can
outlive the call.  Workers attach *untracked* (see
:meth:`FlatPLT.attach`), so the resource tracker never double-registers a
segment it does not own and never warns at exit.

Failure handling is inherited unchanged from
:func:`~repro.parallel.executor._run_batches` (timeouts, pool-reuse
retries, in-process degraded fallback) — the driver's cache is seeded
with the owner's own view, so even the degraded path mines the flat
columns without a second attach.
"""

from __future__ import annotations

import os
import pickle
import signal
from array import array

from repro.core.conditional import mine_conditional_flat_range
from repro.core.flat import FlatPLT
from repro.core.position import PositionVector, path_to_vector
from repro.core.topdown import _decode_path, topdown_flat_slice
from repro.errors import MiningInterrupted
from repro.parallel.executor import (
    _merge_governed_parts,
    _pairs_from_raw,
    _run_batches,
    _trim_to_cap,
)
from repro.perf.counters import COUNTERS as _COUNTERS
from repro.robustness.governor import ResourceGovernor
from repro.robustness.retry import RetryPolicy

__all__ = [
    "SharedMemoryExecutor",
    "mine_parallel_shm",
    "topdown_parallel_shm",
    "plan_rank_ranges",
    "plan_path_slices",
]

#: Fault-injection hook for the chaos suite: ``"<range-start>:<driver-pid>"``.
#: A pool worker that picks up the task whose first index bound equals
#: ``<range-start>`` SIGKILLs itself — unless it *is* the driver process,
#: because the in-process degraded fallback must survive to produce the
#: answer (and the retry rounds re-kill replacement workers, exercising
#: the whole detection → retry → degrade chain).
CHAOS_KILL_ENV = "REPRO_SHM_CHAOS_KILL"

#: Per-worker cache of attached flat structures, keyed by segment name.
#: Lives for the pool's lifetime; the driver seeds its own entry for the
#: degraded in-process fallback (forked workers inheriting it is harmless
#: — the inherited views map the same shared pages).
_FLAT_CACHE: dict[str, FlatPLT] = {}


def _maybe_chaos_kill(key: int) -> None:
    spec = os.environ.get(CHAOS_KILL_ENV)
    if not spec:
        return
    want, _, driver = spec.partition(":")
    if str(key) == want and str(os.getpid()) != driver:
        os.kill(os.getpid(), signal.SIGKILL)


def _attached_flat(meta: dict) -> FlatPLT:
    name = meta["name"]
    flat = _FLAT_CACHE.get(name)
    if flat is None:
        flat = FlatPLT.attach(meta)
        _FLAT_CACHE[name] = flat
    return flat


def _pool_attach(meta: dict) -> None:
    """Pool initializer: map the segment once per worker process."""
    try:
        _attached_flat(meta)
    except Exception:
        # leave the failure to the first task, where the driver sees it
        # as a batch error and can retry / degrade
        _FLAT_CACHE.pop(meta["name"], None)


# ---------------------------------------------------------------------------
# worker entry points (module level: picklable)
# ---------------------------------------------------------------------------
def _shm_cond_range(args) -> tuple[str, list, str | None]:
    """Mine one top-level rank range off the shared columns.

    Mirrors ``_mine_task_batch_governed``'s return contract —
    ``(status, pairs, reason)`` — on both the governed and ungoverned
    paths, so the driver merges one shape.
    """
    meta, lo, hi, min_support, max_len, budget = args
    _maybe_chaos_kill(lo)
    flat = _attached_flat(meta)
    results: list[tuple[tuple[int, ...], int]] = []
    if budget is None or budget.unlimited():
        def emit(itemset: tuple[int, ...], support: int) -> None:
            results.append((itemset, support))

        mine_conditional_flat_range(flat, lo, hi, min_support, emit, max_len)
        return ("ok", results, None)
    governor = ResourceGovernor(budget).start()

    def emit(itemset: tuple[int, ...], support: int) -> None:
        governor.note_itemsets()
        results.append((itemset, support))

    try:
        mine_conditional_flat_range(
            flat, lo, hi, min_support, emit, max_len, governor=governor
        )
    except MiningInterrupted as exc:
        return ("partial", results, exc.reason)
    return ("ok", results, None)


def _shm_topdown_slice(args) -> dict[int, dict[bytes, int]]:
    """Expand one stored-path slice; returns the packed partial table."""
    meta, start, end = args
    _maybe_chaos_kill(start)
    flat = _attached_flat(meta)
    return topdown_flat_slice(flat, start, end, singletons=False)


# ---------------------------------------------------------------------------
# range planning
# ---------------------------------------------------------------------------
def plan_rank_ranges(
    flat: FlatPLT, min_support: int, n_parts: int
) -> list[tuple[int, int]]:
    """Contiguous top-level rank ranges of roughly equal estimated work.

    Ranges cover ``[first frequent rank, last frequent rank + 1)`` and
    split on cumulative :meth:`FlatPLT.rank_costs` (conditional-database
    volume per rank), so a hot rank region doesn't land on one worker.
    Returns ``[]`` when nothing is frequent.
    """
    supports = flat.rank_supports()
    frequent = [
        r for r in range(1, flat.max_rank + 1) if supports[r] >= min_support
    ]
    if not frequent:
        return []
    n_parts = max(1, min(n_parts, len(frequent)))
    lo_all, hi_all = frequent[0], frequent[-1] + 1
    costs = flat.rank_costs()
    weights = [costs[r] + 1 for r in range(lo_all, hi_all)]
    return _balanced_split(lo_all, weights, n_parts)


def plan_path_slices(flat: FlatPLT, n_parts: int) -> list[tuple[int, int]]:
    """Contiguous stored-path slices balanced by ~``2^len`` expansion cost."""
    n = flat.n_paths
    if n == 0:
        return []
    n_parts = max(1, min(n_parts, n))
    off = flat.path_offsets
    weights = [1 << min(off[p + 1] - off[p], 30) for p in range(n)]
    return _balanced_split(0, weights, n_parts)


def _balanced_split(
    base: int, weights: list[int], n_parts: int
) -> list[tuple[int, int]]:
    """Split ``[base, base + len(weights))`` into ``n_parts`` contiguous
    ranges of roughly equal total weight (every range non-empty)."""
    end = base + len(weights)
    target = sum(weights) / n_parts
    ranges: list[tuple[int, int]] = []
    acc = 0.0
    lo = base
    for idx, weight in enumerate(weights):
        acc += weight
        nxt = base + idx + 1
        if acc >= target and len(ranges) < n_parts - 1 and nxt < end:
            ranges.append((lo, nxt))
            lo = nxt
            acc = 0.0
    ranges.append((lo, end))
    return ranges


# ---------------------------------------------------------------------------
# the executor and its drivers
# ---------------------------------------------------------------------------
class SharedMemoryExecutor:
    """Owns one shared FlatPLT segment plus the pool plumbing to mine it.

    Construction copies the columns into the segment once and seeds the
    driver's attach cache with the owning view (so the degraded
    in-process fallback runs with no extra mapping).  ``pool_factory``
    plugs into :func:`_run_batches` and builds pools whose initializer
    attaches every worker before its first task.  :meth:`close` is
    idempotent and must run in a ``finally`` — it unmaps, unlinks, and
    evicts the cache entry, so no segment can leak on any exit path.
    """

    def __init__(self, flat: FlatPLT) -> None:
        self._shared = flat.to_shared_memory()
        self.meta = self._shared.meta
        _FLAT_CACHE[self.meta["name"]] = self._shared.flat

    @property
    def name(self) -> str:
        return self.meta["name"]

    def pool_factory(self, n_processes: int):
        import multiprocessing as mp

        if _COUNTERS.enabled:
            # the initargs tuple is pickled into every spawned worker —
            # that is real dispatch traffic, charged per process
            _COUNTERS.add(
                "ipc_bytes_sent",
                n_processes
                * len(pickle.dumps((self.meta,), pickle.HIGHEST_PROTOCOL)),
            )
        return mp.Pool(
            processes=n_processes, initializer=_pool_attach, initargs=(self.meta,)
        )

    def close(self) -> None:
        _FLAT_CACHE.pop(self.meta["name"], None)
        self._shared.close()
        self._shared.unlink()


def mine_parallel_shm(
    plt,
    min_support: int,
    *,
    n_workers: int,
    max_len: int | None = None,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
    governor: ResourceGovernor | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Conditional mining over rank ranges on the shm transport.

    Called through ``mine_parallel(transport="shm")``; output and budget
    semantics are identical to the pickle transport (the governed merge
    is literally the same function).
    """
    flat = FlatPLT.from_plt(plt)
    ranges = plan_rank_ranges(flat, min_support, n_workers)
    if not ranges:
        return []
    # one driver-side bincount pass; every range worker reads the matrix
    # off the segment instead of recomputing it over all stored paths
    flat.compute_pair_support()
    if governor is not None:
        governor.start()
        governor.check_now()
        ship_budget = governor.budget.with_deadline(governor.remaining_time())
    else:
        ship_budget = None
    executor = SharedMemoryExecutor(flat)
    try:
        batches = [
            (executor.meta, lo, hi, min_support, max_len, ship_budget)
            for lo, hi in ranges
        ]
        try:
            parts = _run_batches(
                _shm_cond_range,
                batches,
                timeout=timeout,
                retry=retry,
                what="mine_parallel[shm]",
                governor=governor,
                pool_factory=executor.pool_factory,
            )
        except MiningInterrupted as exc:
            exc.partial = (
                _trim_to_cap(_pairs_from_raw(exc), governor)
                if governor is not None
                else _pairs_from_raw(exc)
            )
            raise
        if governor is None:
            results: list[tuple[tuple[int, ...], int]] = []
            for _status, part, _reason in parts:
                results.extend(part)
            return results
        return _merge_governed_parts(parts, governor, "mine_parallel")
    finally:
        executor.close()


def topdown_parallel_shm(
    plt,
    *,
    n_workers: int,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
    governor: ResourceGovernor | None = None,
) -> dict[int, dict[PositionVector, int]]:
    """Top-down pass over stored-path slices on the shm transport.

    Called through ``topdown_parallel(transport="shm")`` after its
    work-limit guard and governor arming; like the pickle transport,
    governance is driver-level only and a trip raises with no partial
    (merged tables would hold under-counted sums).
    """
    flat = FlatPLT.from_plt(plt)
    slices = plan_path_slices(flat, n_workers)
    executor = SharedMemoryExecutor(flat)
    try:
        batches = [(executor.meta, start, end) for start, end in slices]
        try:
            parts = _run_batches(
                _shm_topdown_slice,
                batches,
                timeout=timeout,
                retry=retry,
                what="topdown_parallel[shm]",
                governor=governor,
                pool_factory=executor.pool_factory,
            )
        except MiningInterrupted as exc:
            exc.raw_results = []
            exc.partial = []
            raise
        packed: dict[int, dict[bytes, int]] = {}
        for part in parts:
            for length, bucket in part.items():
                target = packed.setdefault(length, {})
                target_get = target.get
                for pb, freq in bucket.items():
                    target[pb] = target_get(pb, 0) + freq
        # the workers all dropped length 1; one vectorised column pass
        # rebuilds the level exactly (singleton subset frequency == rank
        # support), instead of merging the lattice's widest level from
        # every worker's result pickle
        ones = {
            array("I", (rank,)).tobytes(): s
            for rank, s in enumerate(flat.rank_supports())
            if s
        }
        if ones:
            packed[1] = ones
        return {
            length: {
                path_to_vector(_decode_path(pb)): freq
                for pb, freq in bucket.items()
            }
            for length, bucket in packed.items()
        }
    finally:
        executor.close()
