"""The pluggable cluster-backend protocol behind distributed mining.

:mod:`repro.parallel.distributed` is written against a *node-program /
superstep* interface, not against :class:`SimCluster` specifically: a
backend executes the same node program over per-node private states in
BSP supersteps, delivers ``bytes`` messages at superstep boundaries, and
accounts everything in a :class:`~repro.parallel.simcluster.ClusterStats`.
This module names that contract (:class:`ClusterBackend`) and registers
the two implementations:

``sim``
    :class:`~repro.parallel.simcluster.SimCluster` — one interpreter,
    deterministic message-level fault injection, byte-accurate traffic
    accounting.  The default; every chaos test runs here first.
``process``
    :class:`~repro.parallel.processcluster.ProcessCluster` — real worker
    processes over localhost TCP sockets, heartbeat failure detection,
    SIGKILL-tolerant elastic failover.  Same node program, same fault
    plan semantics (kills become real signals, message faults are applied
    by the routing hub), so a run under the same plan produces the same
    mining output as the simulator.

Both backends share the :data:`DONE` termination sentinel: a node votes
for termination by returning it from its step function.  The sentinel is
compared by identity *within* each process — worker processes import
their own copy, which is exactly the one the node program running there
returns.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import InvalidParameterError
from repro.parallel.faults import FaultPlan
from repro.parallel.simcluster import ClusterStats, NodeProgram, SimCluster

__all__ = ["ClusterBackend", "create_backend", "BACKENDS", "DONE"]

#: Termination sentinel shared by every backend (same object as
#: ``SimCluster.DONE``, which node programs historically return).
DONE = SimCluster.DONE

#: Registered backend names, in preference order.
BACKENDS = ("sim", "process")


@runtime_checkable
class ClusterBackend(Protocol):
    """What :func:`~repro.parallel.distributed.mine_distributed` needs.

    A backend is single-shot: construct, :meth:`run`, read ``stats``.
    ``run`` executes ``program(ctx, superstep, state)`` for every node in
    BSP supersteps until all live nodes return :data:`DONE` with nothing
    left on the wire, and returns the final per-node states (``None`` for
    a node whose volatile state was lost to a crash, where the backend
    cannot recover it).
    """

    n_nodes: int
    stats: ClusterStats

    def run(self, program: NodeProgram, states) -> list: ...


def create_backend(
    name: str,
    n_nodes: int,
    *,
    fault_plan: FaultPlan | None = None,
    max_supersteps: int = 10_000,
    **options,
) -> ClusterBackend:
    """Instantiate a registered backend by name.

    ``options`` are backend-specific (e.g. ``heartbeat_interval`` /
    ``detection`` for the process backend) and rejected by backends that
    do not understand them.
    """
    if name == "sim":
        if options:
            raise InvalidParameterError(
                f"the sim backend takes no extra options, got {sorted(options)}"
            )
        return SimCluster(n_nodes, fault_plan=fault_plan, max_supersteps=max_supersteps)
    if name == "process":
        from repro.parallel.processcluster import ProcessCluster

        return ProcessCluster(
            n_nodes, fault_plan=fault_plan, max_supersteps=max_supersteps, **options
        )
    raise InvalidParameterError(
        f"unknown cluster backend {name!r}; available: {', '.join(BACKENDS)}"
    )
