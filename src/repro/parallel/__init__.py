"""Parallel PLT mining (the paper's §6 partitioning claim, ICPP venue)."""

from repro.parallel.backend import BACKENDS, DONE, ClusterBackend, create_backend
from repro.parallel.count_distribution import (
    mine_count_distribution,
    node_level_counts,
)
from repro.parallel.distributed import mine_distributed, owner_of_rank
from repro.parallel.executor import default_workers, mine_parallel, topdown_parallel
from repro.parallel.faults import FaultPlan
from repro.parallel.shm import (
    SharedMemoryExecutor,
    mine_parallel_shm,
    topdown_parallel_shm,
)
from repro.parallel.processcluster import ProcessCluster
from repro.parallel.simcluster import ClusterStats, NodeContext, SimCluster
from repro.parallel.partitioner import (
    ConditionalTask,
    conditional_tasks,
    lpt_partition,
    split_vectors,
)

__all__ = [
    "default_workers",
    "mine_parallel",
    "topdown_parallel",
    "mine_count_distribution",
    "node_level_counts",
    "mine_distributed",
    "owner_of_rank",
    "FaultPlan",
    "SharedMemoryExecutor",
    "mine_parallel_shm",
    "topdown_parallel_shm",
    "SimCluster",
    "ProcessCluster",
    "ClusterBackend",
    "create_backend",
    "BACKENDS",
    "DONE",
    "NodeContext",
    "ClusterStats",
    "ConditionalTask",
    "conditional_tasks",
    "lpt_partition",
    "split_vectors",
]
