"""Multiprocessing executors for PLT mining — hardened against bad pools.

Two exact (not approximate) parallel schemes, following the task
decompositions in :mod:`repro.parallel.partitioner`:

* :func:`mine_parallel` — parallel **conditional** mining.  A sequential
  sweep builds every top-level item's conditional database (cheap), then
  the recursive mining of those databases — where all the time goes — is
  farmed out.  Results concatenate; no reconciliation is needed because
  itemsets are partitioned by their maximal item.
* :func:`topdown_parallel` — parallel **top-down** subset propagation.
  Workers expand disjoint slices of the vector table; the partial subset
  frequency tables merge by addition.

Both fall back to in-process execution for one worker (or tiny inputs),
so results and code paths stay testable without process overhead.  The
pool uses the default start method; tasks and results are plain
picklable dicts/tuples.

Both drivers take ``transport="pickle"`` (ship each task's conditional
database / vector slice through the pool pipe — the default) or
``transport="shm"`` (lower the PLT once into shared-memory columns and
dispatch index ranges; see :mod:`repro.parallel.shm`).  Output is
identical either way; the shm transport exists purely to eliminate the
serialisation copy that dominates pickle dispatch on non-trivial
databases.  Dispatch volume is measured on both transports through the
``ipc_bytes_sent`` perf counter when collection is enabled.

Failure handling (see ``docs/FAULT_TOLERANCE.md``): every batch result is
collected with a per-batch **timeout** instead of a blocking ``pool.map``
— a wedged or killed worker can no longer hang the caller forever.
Failed or timed-out batches are retried per the
:class:`~repro.robustness.retry.RetryPolicy`; the pool is reused across
rounds while it is known-healthy (a worker that merely *raised* is back
on the task queue) and rebuilt only when a round saw a timeout or a torn
pipe — evidence of wedged or dead processes that ``terminate()`` must
reap.  Batches that still fail after the retry budget run in-process
sequentially — degraded but correct — with a
:class:`~repro.errors.DegradedExecutionWarning`.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from collections.abc import Callable, Sequence

from repro.core.conditional import mine_conditional_block
from repro.core.plt import PLT
from repro.core.position import PositionVector
from repro.core.topdown import DEFAULT_WORK_LIMIT, estimate_topdown_work
from repro.errors import (
    BudgetExceeded,
    Cancelled,
    DegradedExecutionWarning,
    InvalidParameterError,
    MiningInterrupted,
    ParallelExecutionError,
    TopDownExplosionError,
    WorkerLostError,
)
from repro.perf.counters import COUNTERS as _COUNTERS
from repro.parallel.partitioner import (
    ConditionalTask,
    conditional_tasks,
    lpt_partition,
    split_vectors,
)
from repro.robustness.governor import ResourceGovernor
from repro.robustness.retry import RetryPolicy

__all__ = [
    "mine_parallel",
    "topdown_parallel",
    "default_workers",
    "DEFAULT_BATCH_TIMEOUT",
    "DEFAULT_EXECUTOR_RETRY",
]

#: Per-batch result deadline in seconds.  Generous — it exists to turn
#: "hangs forever on a wedged worker" into "degrades after a bound", not
#: to police slow batches.  Pass ``timeout=None`` to wait indefinitely.
DEFAULT_BATCH_TIMEOUT = 300.0

#: One immediate retry on a fresh pool, then in-process fallback.
DEFAULT_EXECUTOR_RETRY = RetryPolicy(max_retries=1, base_delay=0.0, max_delay=0.0)


def default_workers() -> int:
    """Worker count default: physical parallelism, capped for sanity."""
    return max(1, min(os.cpu_count() or 1, 8))


# ---------------------------------------------------------------------------
# worker entry points (module level: picklable)
# ---------------------------------------------------------------------------
def _mine_task_batch(
    args: tuple[list[tuple[int, int, dict]], int, int | None]
) -> list[tuple[tuple[int, ...], int]]:
    """Mine a batch of conditional tasks; returns (ranks, support) pairs."""
    batch, min_support, max_len = args
    results: list[tuple[tuple[int, ...], int]] = []

    # the path engine emits itemsets already sorted ascending — append raw
    def emit(itemset: tuple[int, ...], support: int) -> None:
        results.append((itemset, support))

    for rank, support, prefixes in batch:
        emit((rank,), support)
        if prefixes and (max_len is None or max_len > 1):
            mine_conditional_block(prefixes, rank, min_support, emit, max_len)
    return results


def _mine_task_batch_governed(
    args: tuple[list[tuple[int, int, dict]], int, int | None, object]
) -> tuple[str, list[tuple[tuple[int, ...], int]], str | None]:
    """Governed worker entry: mine under a shipped :class:`MiningBudget`.

    Cancellation tokens cannot cross process boundaries, so workers get a
    picklable budget copy carrying the driver's *remaining* deadline and
    enforce it with their own governor.  Budget trips never propagate as
    exceptions (custom kwargs don't survive unpickling); the return is
    always ``(status, pairs, reason)`` with ``status`` one of ``"ok"`` /
    ``"partial"`` — every pair carries its exact support either way.
    """
    batch, min_support, max_len, budget = args
    if budget is None or budget.unlimited():
        return ("ok", _mine_task_batch((batch, min_support, max_len)), None)
    governor = ResourceGovernor(budget).start()
    results: list[tuple[tuple[int, ...], int]] = []

    def emit(itemset: tuple[int, ...], support: int) -> None:
        governor.note_itemsets()
        results.append((itemset, support))

    try:
        for rank, support, prefixes in batch:
            governor.progress["mining_rank"] = rank
            governor.tick()
            emit((rank,), support)
            if prefixes and (max_len is None or max_len > 1):
                mine_conditional_block(
                    prefixes, rank, min_support, emit, max_len, governor=governor
                )
    except MiningInterrupted as exc:
        return ("partial", results, exc.reason)
    return ("ok", results, None)


def _topdown_slice(
    args: tuple[dict, int]
) -> dict[int, dict[PositionVector, int]]:
    """Expand a vector-table slice; returns partial subset frequencies."""
    vectors, _ = args
    from repro.core.topdown import topdown_subset_frequencies

    return topdown_subset_frequencies(_shell_plt(vectors), work_limit=None)


def _shell_plt(vectors: dict[PositionVector, int]) -> PLT:
    """A label-less PLT carrying only vectors (enough for top-down)."""
    from repro.core.rank import RankTable

    max_rank = max((sum(v) for v in vectors), default=0)
    table = RankTable(list(range(1, max_rank + 1)), order="shell")
    return PLT.from_vectors(table, vectors, min_support=1)


# ---------------------------------------------------------------------------
# the hardened batch runner
# ---------------------------------------------------------------------------
def _raise_if_tripped(governor: ResourceGovernor, what: str, results: list) -> None:
    """Driver-side trip check between result waits (pool paths only)."""
    cancel = governor.cancel
    if cancel is not None and cancel.cancelled:
        exc: MiningInterrupted = Cancelled(
            f"{what}: mining cancelled: {cancel.reason}", reason="cancelled"
        )
        exc.raw_results = [r for r in results if r is not None]
        raise exc
    remaining_t = governor.remaining_time()
    if remaining_t is not None and remaining_t <= 0:
        exc = BudgetExceeded(
            f"{what}: deadline of {governor.budget.deadline}s exceeded",
            reason="deadline",
        )
        exc.raw_results = [r for r in results if r is not None]
        raise exc


def _batch_rank(batch) -> int | None:
    """First top-level item rank of a mining batch, for error reports.

    Mining batches are ``([(rank, support, prefixes), ...], ...)``;
    top-down batches carry a vector table instead and yield ``None``.
    """
    try:
        rank = batch[0][0][0]
    except (TypeError, LookupError):
        return None
    return rank if isinstance(rank, int) else None


def _run_batches(
    worker: Callable,
    batches: Sequence,
    *,
    timeout: float | None,
    retry: RetryPolicy | None,
    what: str,
    governor: ResourceGovernor | None = None,
    pool_factory: Callable | None = None,
) -> list:
    """Run ``worker(batch)`` for every batch on worker processes, reliably.

    Results are collected with a per-batch deadline via ``AsyncResult.get``
    (``pool.map`` would block forever on a wedged worker).  Failed or
    timed-out batches are retried; one pool is **reused across retry
    rounds** while it is known-healthy — a worker that merely raised an
    exception is already back on the task queue, so respawning the whole
    pool would only pay fork-and-import again.  The pool is rebuilt when a
    round observed a timeout or a torn result pipe (a worker wedged in a
    batch, or dead): ``terminate()`` reaps the old processes first.
    Whatever survives the retry budget runs in-process sequentially under
    a :class:`DegradedExecutionWarning`; an error even then is a genuine
    bug in the batch and is re-raised as :class:`ParallelExecutionError`.

    ``pool_factory`` (``n_processes -> pool``) lets transports customise
    pool construction (the shm transport installs an initializer that
    attaches workers to the shared segment); the default is a plain
    ``mp.Pool``.  When perf counters are enabled, every dispatched batch's
    pickled size is charged to ``ipc_bytes_sent`` — re-sent batches count
    again, because they are in fact sent again.

    With a ``governor``, the result wait is sliced so the driver observes
    its cancellation token and deadline between waits; a trip terminates
    the pool (via the ``finally``) and raises with the results already
    collected attached as ``raw_results``.

    Returns results in batch order.
    """
    import multiprocessing as mp

    if retry is None:
        retry = DEFAULT_EXECUTOR_RETRY
    if pool_factory is None:
        def pool_factory(n_processes: int):
            return mp.Pool(processes=n_processes)
    results: list = [None] * len(batches)
    remaining = list(range(len(batches)))
    last_error: BaseException | None = None
    pool = None
    pool_dirty = False
    try:
        for attempt in range(retry.max_retries + 1):
            if not remaining:
                break
            if attempt:
                pause = retry.delay(attempt, key=what)
                if pause:
                    time.sleep(pause)
            if pool_dirty and pool is not None:
                pool.terminate()
                pool.join()
                pool = None
            if pool is None:
                try:
                    pool = pool_factory(len(remaining))
                except Exception as exc:  # pragma: no cover - resource exhaustion
                    last_error = exc
                    continue
                pool_dirty = False
            failed: list[int] = []
            if _COUNTERS.enabled:
                for i in remaining:
                    _COUNTERS.add(
                        "ipc_bytes_sent",
                        len(pickle.dumps(batches[i], pickle.HIGHEST_PROTOCOL)),
                    )
            handles = [(i, pool.apply_async(worker, (batches[i],))) for i in remaining]
            deadline = None if timeout is None else time.monotonic() + timeout
            for i, handle in handles:
                while True:
                    if governor is not None:
                        _raise_if_tripped(governor, what, results)
                    budget = (
                        None if deadline is None else max(0.0, deadline - time.monotonic())
                    )
                    # slice the wait so a governed driver observes its
                    # token/deadline promptly; ungoverned waits stay whole
                    if governor is not None:
                        slice_budget = 0.05 if budget is None else min(0.05, budget)
                    else:
                        slice_budget = budget
                    try:
                        results[i] = handle.get(slice_budget)
                        break
                    except mp.TimeoutError:
                        if governor is not None and (budget is None or budget > 0):
                            continue
                        failed.append(i)
                        pool_dirty = True  # the worker is still wedged in it
                        # a killed pool worker never errors — its result
                        # just never arrives, so the deadline is also the
                        # worker-loss detector
                        last_error = WorkerLostError(
                            f"{what}: batch {i} exceeded the {timeout}s "
                            "deadline (worker wedged or its process was "
                            "killed)",
                            rank=_batch_rank(batches[i]),
                        )
                        break
                    except (EOFError, ConnectionError, OSError) as exc:
                        # the worker died mid-result (pipe torn down)
                        failed.append(i)
                        pool_dirty = True
                        last_error = WorkerLostError(
                            f"{what}: worker running batch {i} died before "
                            f"returning a result: {exc!r}",
                            rank=_batch_rank(batches[i]),
                        )
                        break
                    except Exception as exc:
                        # the worker survived (it raised) — pool stays usable
                        failed.append(i)
                        last_error = exc
                        break
            remaining = failed
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    if remaining:
        warnings.warn(
            f"{what}: {len(remaining)} of {len(batches)} batches failed on "
            f"worker processes after {retry.max_retries + 1} attempts "
            f"(last error: {last_error}); degrading to in-process execution",
            DegradedExecutionWarning,
            stacklevel=3,
        )
        for i in remaining:
            try:
                results[i] = worker(batches[i])
            except Exception as exc:
                raise ParallelExecutionError(
                    f"{what}: batch {i} failed even in-process: {exc}"
                ) from exc
    return results


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------
def _check_transport(transport: str) -> None:
    if transport not in ("pickle", "shm"):
        raise InvalidParameterError(
            f"unknown transport {transport!r}: expected 'pickle' or 'shm'"
        )


def mine_parallel(
    plt: PLT,
    min_support: int | None = None,
    *,
    n_workers: int | None = None,
    max_len: int | None = None,
    timeout: float | None = DEFAULT_BATCH_TIMEOUT,
    retry: RetryPolicy | None = None,
    governor: ResourceGovernor | None = None,
    transport: str = "pickle",
) -> list[tuple[tuple[int, ...], int]]:
    """Parallel conditional mining; same output as ``mine_conditional``.

    ``timeout`` bounds each batch attempt (seconds; ``None`` disables) and
    ``retry`` sets how many pool retries failed batches get before the
    in-process fallback.  ``transport="shm"`` dispatches rank ranges over
    a shared-memory :class:`~repro.core.flat.FlatPLT` instead of pickling
    conditional databases (identical output; see
    :mod:`repro.parallel.shm`); single-worker and trivial inputs run
    in-process on either transport.

    With a ``governor``: workers receive a budget copy carrying the
    *remaining* deadline and trip themselves; the driver additionally
    polls the cancellation token and deadline between result waits, and
    enforces ``max_itemsets`` on the merged output.  A trip raises
    :class:`~repro.errors.BudgetExceeded` / :class:`~repro.errors.Cancelled`
    carrying every pair collected so far (all exact supports).
    """
    if min_support is None:
        min_support = plt.min_support
    if n_workers is None:
        n_workers = default_workers()
    _check_transport(transport)
    if transport == "shm" and n_workers > 1 and plt.n_vectors() > 1:
        from repro.parallel.shm import mine_parallel_shm

        return mine_parallel_shm(
            plt,
            min_support,
            n_workers=n_workers,
            max_len=max_len,
            timeout=timeout,
            retry=retry,
            governor=governor,
        )
    tasks = conditional_tasks(plt, min_support)
    if not tasks:
        return []
    if n_workers <= 1 or len(tasks) == 1:
        batch = [(t.rank, t.support, t.prefixes) for t in tasks]
        if governor is None:
            return _mine_task_batch((batch, min_support, max_len))
        return _mine_inprocess_governed(batch, min_support, max_len, governor)
    sizes = [t.cost_estimate() for t in tasks]
    bins = lpt_partition(tasks, sizes, n_workers)
    packed = [
        [(t.rank, t.support, t.prefixes) for t in bin_tasks]
        for bin_tasks in bins
        if bin_tasks
    ]
    if governor is None:
        results: list[tuple[tuple[int, ...], int]] = []
        for part in _run_batches(
            _mine_task_batch,
            [(b, min_support, max_len) for b in packed],
            timeout=timeout,
            retry=retry,
            what="mine_parallel",
        ):
            results.extend(part)
        return results
    governor.start()
    governor.check_now()
    ship_budget = governor.budget.with_deadline(governor.remaining_time())
    batches = [(b, min_support, max_len, ship_budget) for b in packed]
    try:
        parts = _run_batches(
            _mine_task_batch_governed,
            batches,
            timeout=timeout,
            retry=retry,
            what="mine_parallel",
            governor=governor,
        )
    except MiningInterrupted as exc:
        exc.partial = _trim_to_cap(_pairs_from_raw(exc), governor)
        raise
    return _merge_governed_parts(parts, governor, "mine_parallel")


def _pairs_from_raw(exc: MiningInterrupted) -> list[tuple[tuple[int, ...], int]]:
    """Salvage mined pairs from the ``(status, pairs, reason)`` results a
    driver-side trip had already collected before raising."""
    pairs: list[tuple[tuple[int, ...], int]] = []
    for entry in getattr(exc, "raw_results", []):
        pairs.extend(entry[1])
    return pairs


def _merge_governed_parts(
    parts: list, governor: ResourceGovernor, what: str
) -> list[tuple[tuple[int, ...], int]]:
    """Merge governed worker returns; enforce the cap; raise on any trip.

    Shared by both transports, so budget semantics cannot drift between
    them: same trim, same ``reason`` precedence, same exception class.
    """
    results: list[tuple[tuple[int, ...], int]] = []
    stop_reason: str | None = None
    for status, part, reason in parts:
        results.extend(part)
        if status == "partial" and stop_reason is None:
            stop_reason = reason
    cap = governor.budget.max_itemsets
    if cap is not None and len(results) > cap:
        del results[cap:]
        if stop_reason is None:
            stop_reason = "max_itemsets"
    governor.itemsets = len(results)
    if stop_reason is not None:
        cls = Cancelled if stop_reason == "cancelled" else BudgetExceeded
        raise cls(
            f"{what}: budget exhausted in worker processes ({stop_reason})",
            reason=stop_reason,
            partial=results,
        )
    return results


def _mine_inprocess_governed(
    batch: list[tuple[int, int, dict]],
    min_support: int,
    max_len: int | None,
    governor: ResourceGovernor,
) -> list[tuple[tuple[int, ...], int]]:
    """Single-worker path under the caller's own governor (shared object)."""
    governor.start()
    results: list[tuple[tuple[int, ...], int]] = []

    def emit(itemset: tuple[int, ...], support: int) -> None:
        governor.note_itemsets()
        results.append((itemset, support))

    try:
        for rank, support, prefixes in batch:
            governor.progress["mining_rank"] = rank
            governor.tick()
            emit((rank,), support)
            if prefixes and (max_len is None or max_len > 1):
                mine_conditional_block(
                    prefixes, rank, min_support, emit, max_len, governor=governor
                )
    except MiningInterrupted as exc:
        exc.partial = results
        raise
    return results


def _trim_to_cap(
    pairs: list[tuple[tuple[int, ...], int]], governor: ResourceGovernor
) -> list[tuple[tuple[int, ...], int]]:
    cap = governor.budget.max_itemsets
    if cap is not None and len(pairs) > cap:
        del pairs[cap:]
    return pairs


def topdown_parallel(
    plt: PLT,
    *,
    n_workers: int | None = None,
    work_limit: int | None = DEFAULT_WORK_LIMIT,
    timeout: float | None = DEFAULT_BATCH_TIMEOUT,
    retry: RetryPolicy | None = None,
    governor: ResourceGovernor | None = None,
    transport: str = "pickle",
) -> dict[int, dict[PositionVector, int]]:
    """Parallel top-down pass; same output as ``topdown_subset_frequencies``.

    ``timeout``/``retry``/``transport`` behave as in :func:`mine_parallel`
    (``"shm"`` dispatches stored-path slices over a shared FlatPLT instead
    of pickled vector tables).

    Governance is driver-level only, and a trip raises with **no**
    partial attached: each worker's table holds partial *sums* for
    vectors shared across slices, so an incomplete merge would report
    under-counted (inexact) frequencies — exactly what governed partials
    promise never to do.
    """
    if n_workers is None:
        n_workers = default_workers()
    _check_transport(transport)
    if work_limit is not None:
        estimate = estimate_topdown_work(plt)
        if estimate > work_limit:
            raise TopDownExplosionError(
                f"top-down pass would generate up to {estimate} subset events "
                f"(work_limit={work_limit})"
            )
    if governor is not None:
        governor.start()
        governor.check_now()
    if transport == "shm" and n_workers > 1 and plt.n_vectors() > 1:
        from repro.parallel.shm import topdown_parallel_shm

        return topdown_parallel_shm(
            plt,
            n_workers=n_workers,
            timeout=timeout,
            retry=retry,
            governor=governor,
        )
    slices = [s for s in split_vectors(plt, n_workers) if s]
    if len(slices) <= 1 or n_workers <= 1:
        if governor is None:
            from repro.core.topdown import topdown_subset_frequencies

            return topdown_subset_frequencies(plt, work_limit=None)
        from repro.core.position import path_to_vector
        from repro.core.topdown import _decode_path, _subset_byte_frequencies

        try:
            counts = _subset_byte_frequencies(plt, governor=governor)
        except MiningInterrupted as exc:
            governor.progress.pop("_topdown_counts", None)
            exc.partial = []
            raise
        governor.progress.pop("_topdown_counts", None)
        return {
            length: {
                path_to_vector(_decode_path(pb)): freq for pb, freq in bucket.items()
            }
            for length, bucket in counts.items()
        }
    merged: dict[int, dict[PositionVector, int]] = {}
    try:
        parts = _run_batches(
            _topdown_slice,
            [(s, 0) for s in slices],
            timeout=timeout,
            retry=retry,
            what="topdown_parallel",
            governor=governor,
        )
    except MiningInterrupted as exc:
        exc.raw_results = []
        exc.partial = []
        raise
    for partial in parts:
        for length, bucket in partial.items():
            target = merged.setdefault(length, {})
            for vec, freq in bucket.items():
                target[vec] = target.get(vec, 0) + freq
    return merged
