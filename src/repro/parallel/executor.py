"""Multiprocessing executors for PLT mining.

Two exact (not approximate) parallel schemes, following the task
decompositions in :mod:`repro.parallel.partitioner`:

* :func:`mine_parallel` — parallel **conditional** mining.  A sequential
  sweep builds every top-level item's conditional database (cheap), then
  the recursive mining of those databases — where all the time goes — is
  farmed out.  Results concatenate; no reconciliation is needed because
  itemsets are partitioned by their maximal item.
* :func:`topdown_parallel` — parallel **top-down** subset propagation.
  Workers expand disjoint slices of the vector table; the partial subset
  frequency tables merge by addition.

Both fall back to in-process execution for one worker (or tiny inputs),
so results and code paths stay testable without process overhead.  The
pool uses the default start method; tasks and results are plain
picklable dicts/tuples.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.core.conditional import _mine, build_conditional_buckets
from repro.core.plt import PLT
from repro.core.position import PositionVector
from repro.core.topdown import DEFAULT_WORK_LIMIT, estimate_topdown_work
from repro.errors import ParallelExecutionError, TopDownExplosionError
from repro.parallel.partitioner import (
    ConditionalTask,
    conditional_tasks,
    lpt_partition,
    split_vectors,
)

__all__ = ["mine_parallel", "topdown_parallel", "default_workers"]


def default_workers() -> int:
    """Worker count default: physical parallelism, capped for sanity."""
    return max(1, min(os.cpu_count() or 1, 8))


# ---------------------------------------------------------------------------
# worker entry points (module level: picklable)
# ---------------------------------------------------------------------------
def _mine_task_batch(
    args: tuple[list[tuple[int, int, dict]], int, int | None]
) -> list[tuple[tuple[int, ...], int]]:
    """Mine a batch of conditional tasks; returns (ranks, support) pairs."""
    batch, min_support, max_len = args
    results: list[tuple[tuple[int, ...], int]] = []

    def emit(itemset: tuple[int, ...], support: int) -> None:
        results.append((tuple(sorted(itemset)), support))

    for rank, support, prefixes in batch:
        emit((rank,), support)
        if prefixes and (max_len is None or max_len > 1):
            buckets = build_conditional_buckets(prefixes, min_support)
            if buckets:
                _mine(buckets, (rank,), min_support, emit, max_len)
    return results


def _topdown_slice(
    args: tuple[dict, int]
) -> dict[int, dict[PositionVector, int]]:
    """Expand a vector-table slice; returns partial subset frequencies."""
    vectors, _ = args
    from repro.core.topdown import topdown_subset_frequencies

    return topdown_subset_frequencies(_shell_plt(vectors), work_limit=None)


def _shell_plt(vectors: dict[PositionVector, int]) -> PLT:
    """A label-less PLT carrying only vectors (enough for top-down)."""
    from repro.core.rank import RankTable

    max_rank = max((sum(v) for v in vectors), default=0)
    table = RankTable(list(range(1, max_rank + 1)), order="shell")
    return PLT.from_vectors(table, vectors, min_support=1)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------
def mine_parallel(
    plt: PLT,
    min_support: int | None = None,
    *,
    n_workers: int | None = None,
    max_len: int | None = None,
) -> list[tuple[tuple[int, ...], int]]:
    """Parallel conditional mining; same output as ``mine_conditional``."""
    if min_support is None:
        min_support = plt.min_support
    if n_workers is None:
        n_workers = default_workers()
    tasks = conditional_tasks(plt, min_support)
    if not tasks:
        return []
    if n_workers <= 1 or len(tasks) == 1:
        return _mine_task_batch(
            ([(t.rank, t.support, t.prefixes) for t in tasks], min_support, max_len)
        )
    sizes = [t.cost_estimate() for t in tasks]
    bins = lpt_partition(tasks, sizes, n_workers)
    batches = [
        ([(t.rank, t.support, t.prefixes) for t in bin_tasks], min_support, max_len)
        for bin_tasks in bins
        if bin_tasks
    ]
    results: list[tuple[tuple[int, ...], int]] = []
    import multiprocessing as mp

    try:
        with mp.Pool(processes=len(batches)) as pool:
            for part in pool.map(_mine_task_batch, batches):
                results.extend(part)
    except Exception as exc:  # pragma: no cover - depends on platform failures
        raise ParallelExecutionError(f"parallel conditional mining failed: {exc}") from exc
    return results


def topdown_parallel(
    plt: PLT,
    *,
    n_workers: int | None = None,
    work_limit: int | None = DEFAULT_WORK_LIMIT,
) -> dict[int, dict[PositionVector, int]]:
    """Parallel top-down pass; same output as ``topdown_subset_frequencies``."""
    if n_workers is None:
        n_workers = default_workers()
    if work_limit is not None:
        estimate = estimate_topdown_work(plt)
        if estimate > work_limit:
            raise TopDownExplosionError(
                f"top-down pass would generate up to {estimate} subset events "
                f"(work_limit={work_limit})"
            )
    slices = [s for s in split_vectors(plt, n_workers) if s]
    if len(slices) <= 1 or n_workers <= 1:
        from repro.core.topdown import topdown_subset_frequencies

        return topdown_subset_frequencies(plt, work_limit=None)
    import multiprocessing as mp

    merged: dict[int, dict[PositionVector, int]] = {}
    try:
        with mp.Pool(processes=len(slices)) as pool:
            for partial in pool.map(_topdown_slice, [(s, 0) for s in slices]):
                for length, bucket in partial.items():
                    target = merged.setdefault(length, {})
                    for vec, freq in bucket.items():
                        target[vec] = target.get(vec, 0) + freq
    except Exception as exc:  # pragma: no cover
        raise ParallelExecutionError(f"parallel top-down failed: {exc}") from exc
    return merged
