"""Real-process cluster backend: node programs in OS processes over TCP.

:class:`ProcessCluster` runs the same node programs as
:class:`~repro.parallel.simcluster.SimCluster` — same BSP supersteps,
same ``bytes``-only messages, same :class:`ClusterStats` accounting —
but every node is a **real worker process** with genuinely private
memory, connected to the parent over a localhost TCP socket.  Crash
failover, ack/retransmit framing and checkpoint replay are therefore
exercised against real process death (``SIGKILL``), real sockets, and
real partial writes, not function calls.

Topology and lockstep
---------------------
The parent is a routing hub (star topology).  Each superstep it:

1. applies scheduled kills from the :class:`~repro.parallel.faults.FaultPlan`
   (``crashes={node: superstep}`` becomes a real ``SIGKILL``);
2. delivers the messages due this superstep to each live worker and asks
   it to run one step of the node program;
3. collects each worker's outbox, termination vote, compute time and
   protocol-counter deltas;
4. routes the outboxes — in node-id order, so the **global send index**
   matches the simulator's and message-level fault injection
   (drop/corrupt/duplicate/delay) is applied identically at the hub.

Because the node programs are deterministic given their delivered
inboxes, a run under a given fault plan produces the *same mining
output* as the simulator under that plan; the backend test suite
asserts this equivalence.

Wire format
-----------
TCP is a byte stream, and a killed peer can die mid-write, so every
transport segment is framed::

    length   4 bytes  big-endian count of the frame that follows
    frame    CRC-framed DATA frame (:mod:`repro.robustness.framing`)
             whose payload is a pickled control tuple

A short read (EOF inside a segment) or a CRC mismatch marks the peer
dead — a torn write can never decode to a wrong message.  Control
tuples: ``("hello", node_id)``, ``("hb",)`` heartbeats,
``("step", superstep, inbox)``, ``("done", superstep, outbox, is_done,
elapsed, stats_delta)``, ``("stop",)``, ``("final", state)`` and
``("error", exc_name, message, node_id, superstep)``.

Failure detection
-----------------
Each worker runs a daemon thread that sends a heartbeat every
``heartbeat_interval`` seconds, so even a worker deep in a long mining
step stays visibly alive.  The parent declares a worker dead when its
socket reports EOF (the fast path after a ``SIGKILL``) or when no
traffic arrives for the duration of the ``detection``
:class:`~repro.robustness.retry.RetryPolicy` schedule (miss threshold =
``max_retries``, per-miss timeout = the policy's delays) — covering
wedged-but-alive processes.  A declared-dead worker is SIGKILLed to
enforce fail-stop before the cluster moves on.

What happens *after* detection is the node programs' business: the
distributed-mining protocol's coordinator re-shards the dead worker's
ownership slots onto survivors and the survivors replay the lost state
from the shared file-backed
:class:`~repro.robustness.checkpoint.CheckpointStore` — the same
elastic-failover path the chaos suite drills on the simulator.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue
import socket
import struct
import threading
import time

from repro import errors as _errors
from repro.errors import (
    CodecError,
    CrashedNodeError,
    ParallelExecutionError,
    WorkerLostError,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.simcluster import ClusterStats, NodeContext, NodeProgram, SimCluster
from repro.robustness.framing import decode_frame, encode_data
from repro.robustness.retry import RetryPolicy

__all__ = [
    "ProcessCluster",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_DETECTION_RETRY",
]

#: Worker heartbeat period (seconds).
DEFAULT_HEARTBEAT_INTERVAL = 0.1

#: Default failure-detection schedule: 20 missed 100 ms intervals (2 s of
#: silence) before a worker is declared dead.
DEFAULT_DETECTION_RETRY = RetryPolicy(
    max_retries=20, base_delay=0.1, multiplier=1.0, max_delay=0.1
)

#: Hard cap on one transport segment (a slice bundle is far smaller).
_MAX_SEGMENT = 1 << 30

_LEN = struct.Struct(">I")

#: ClusterStats counters owned by the workers (shipped back as deltas);
#: the hub owns supersteps, fault tallies, crash lists and wall clocks.
_DELTA_FIELDS = (
    "messages",
    "bytes_sent",
    "retransmits",
    "rejected_frames",
    "failovers",
    "checkpoint_writes",
    "checkpoint_reads",
    "heartbeats_sent",
    "heartbeats_missed",
    "workers_declared_dead",
    "ranks_resharded",
    "supersteps_replayed",
)


# ---------------------------------------------------------------------------
# transport
# ---------------------------------------------------------------------------
def _send_msg(sock: socket.socket, lock: threading.Lock, seq: int, obj) -> None:
    frame = encode_data(seq, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    data = _LEN.pack(len(frame)) + frame
    with lock:
        sock.sendall(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed mid-segment")
        buf += chunk
    return bytes(buf)


def _recv_msg(sock: socket.socket):
    """Read one CRC-verified control tuple; raises on EOF or damage."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > _MAX_SEGMENT:
        raise CodecError(f"transport segment of {length} bytes exceeds the cap")
    frame = decode_frame(_recv_exact(sock, length))
    return pickle.loads(frame.payload)


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------
def _worker_main(
    node_id: int,
    n_nodes: int,
    port: int,
    program: NodeProgram,
    state,
    hb_interval: float,
) -> None:
    """One cluster node: connect, heartbeat, step on demand, report."""
    sock = socket.create_connection(("127.0.0.1", port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    lock = threading.Lock()
    seq = 0

    def send(obj) -> None:
        nonlocal seq
        _send_msg(sock, lock, seq, obj)
        seq += 1

    send(("hello", node_id))
    stop_beating = threading.Event()

    def _beat() -> None:
        while not stop_beating.wait(hb_interval):
            try:
                send(("hb",))
            except OSError:
                return

    threading.Thread(target=_beat, daemon=True, name=f"hb-{node_id}").start()
    stats = ClusterStats(n_nodes=n_nodes)
    snapshot = {field: 0 for field in _DELTA_FIELDS}
    try:
        while True:
            msg = _recv_msg(sock)
            kind = msg[0]
            if kind == "step":
                _, superstep, inbox = msg
                ctx = NodeContext(node_id, n_nodes, stats)
                ctx._inbox = list(inbox)
                start = time.perf_counter()
                try:
                    result = program(ctx, superstep, state)
                except Exception as exc:
                    send(("error", type(exc).__name__, str(exc), node_id, superstep))
                    raise SystemExit(1)
                elapsed = time.perf_counter() - start
                is_done = result is SimCluster.DONE
                if not is_done:
                    state = result
                delta = {}
                for field in _DELTA_FIELDS:
                    value = getattr(stats, field)
                    delta[field] = value - snapshot[field]
                    snapshot[field] = value
                send(("done", superstep, list(ctx._outbox), is_done, elapsed, delta))
            elif kind == "stop":
                try:
                    send(("final", state))
                except Exception as exc:  # unpicklable state is a bug
                    send(("error", type(exc).__name__, str(exc), node_id, -1))
                    raise SystemExit(1)
                return
    except (OSError, ConnectionError, CodecError, EOFError):
        return  # the parent went away; nothing useful left to do
    finally:
        stop_beating.set()
        try:
            sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# the parent hub
# ---------------------------------------------------------------------------
class ProcessCluster:
    """Run a node program on ``n_nodes`` real worker processes.

    Satisfies :class:`~repro.parallel.backend.ClusterBackend`.  Single
    shot: construct, :meth:`run` once, read :attr:`stats`.  The final
    state of a crashed node is ``None`` — unlike the simulator, a killed
    process's volatile state is genuinely unrecoverable.

    ``fault_plan`` is honoured in full: ``crashes`` become real
    ``SIGKILL``\\ s at the scheduled superstep boundary, message-level
    faults are injected by the routing hub with the same global-send-index
    addressing as the simulator, and ``slow_nodes`` scales the accounted
    compute time.  ``program`` and every initial state must be picklable
    (they are shipped to the workers).
    """

    DONE = SimCluster.DONE

    def __init__(
        self,
        n_nodes: int,
        *,
        fault_plan: FaultPlan | None = None,
        max_supersteps: int = 10_000,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        detection: RetryPolicy | None = None,
        startup_timeout: float = 30.0,
    ):
        if n_nodes < 1:
            raise ParallelExecutionError("n_nodes must be >= 1")
        if heartbeat_interval <= 0:
            raise ParallelExecutionError("heartbeat_interval must be > 0")
        self.n_nodes = n_nodes
        self.fault_plan = fault_plan
        self.max_supersteps = max_supersteps
        self.heartbeat_interval = heartbeat_interval
        self.detection = detection if detection is not None else DEFAULT_DETECTION_RETRY
        self.startup_timeout = startup_timeout
        self.stats = ClusterStats(n_nodes=n_nodes)
        self.stats.compute_seconds_per_node = [0.0] * n_nodes
        # silence tolerated before a worker is declared dead
        self._hb_timeout = max(
            sum(self.detection.delays("heartbeat")), 3 * heartbeat_interval
        )
        self._msg_counter = 0
        self._in_flight: dict[int, list[tuple[int, int, int, bytes]]] = {}
        self._procs: list = [None] * n_nodes
        self._conns: list[socket.socket | None] = [None] * n_nodes
        self._queues = [queue.Queue() for _ in range(n_nodes)]
        self._last_seen = [0.0] * n_nodes
        self._seqs = [0] * n_nodes
        self._send_locks = [threading.Lock() for _ in range(n_nodes)]
        self._stats_lock = threading.Lock()
        self._crashed: set[int] = set()
        self._done = [False] * n_nodes
        self._listener: socket.socket | None = None
        self._used = False

    # -- plumbing ----------------------------------------------------------
    def _send(self, i: int, obj) -> None:
        conn = self._conns[i]
        if conn is None:
            raise OSError("no connection")
        _send_msg(conn, self._send_locks[i], self._seqs[i], obj)
        self._seqs[i] += 1

    def _reader(self, i: int, conn: socket.socket) -> None:
        """Per-worker reader thread: drain the socket into the queue."""
        try:
            while True:
                msg = _recv_msg(conn)
                self._last_seen[i] = time.monotonic()
                if msg[0] == "hb":
                    with self._stats_lock:
                        self.stats.heartbeats_sent += 1
                    continue
                self._queues[i].put(msg)
        except Exception:
            self._queues[i].put(("eof",))

    def _kill(self, i: int) -> None:
        proc = self._procs[i]
        if proc is not None and proc.is_alive():
            proc.kill()  # SIGKILL: fail-stop, no cleanup handlers

    def _declare_dead(self, i: int, superstep: int, *, scheduled: bool) -> None:
        """Fence and record a dead worker (idempotent)."""
        if i in self._crashed:
            return
        self._kill(i)
        self._crashed.add(i)
        self._done[i] = True
        self.stats.crashed_nodes.append(i)
        if not scheduled:
            with self._stats_lock:
                self.stats.workers_declared_dead += 1

    def _raise_worker_error(self, name: str, message: str, node_id, superstep):
        cls = getattr(_errors, name, None)
        if isinstance(cls, type) and issubclass(cls, ParallelExecutionError):
            raise cls(message, node_id=node_id, superstep=superstep)
        raise ParallelExecutionError(
            f"node {node_id} failed at superstep {superstep}: {name}: {message}",
            node_id=node_id,
            superstep=superstep,
        )

    def _await(self, i: int, want: str, superstep: int):
        """Next ``want`` message from live worker ``i``, or ``None`` if it
        dies first (the death is recorded before returning)."""
        while True:
            try:
                msg = self._queues[i].get_nowait()
            except queue.Empty:
                if time.monotonic() - self._last_seen[i] > self._hb_timeout:
                    with self._stats_lock:
                        self.stats.heartbeats_missed += self.detection.max_retries
                    self._declare_dead(i, superstep, scheduled=False)
                    return None
                try:
                    msg = self._queues[i].get(
                        timeout=min(0.05, self.heartbeat_interval)
                    )
                except queue.Empty:
                    continue
            kind = msg[0]
            if kind == "eof":
                self._declare_dead(i, superstep, scheduled=False)
                return None
            if kind == "error":
                _, name, message, node_id, err_superstep = msg
                self._raise_worker_error(name, message, node_id, err_superstep)
            if kind == want:
                return msg
            # anything else (a stale vote from a pre-declared-dead race)
            # is dropped; the protocol layer is idempotent anyway

    # -- fault-plan routing (mirrors SimCluster._post_outboxes) ------------
    def _route(self, src: int, outbox, superstep: int) -> None:
        plan = self.fault_plan
        for dest, payload in outbox:
            index = self._msg_counter
            self._msg_counter += 1
            arrival = superstep + 1
            copies = 1
            if plan is not None:
                if plan.drops(index):
                    self.stats.dropped += 1
                    continue
                if plan.corrupts(index):
                    payload = plan.corrupt_payload(index, payload)
                    self.stats.corrupted += 1
                if plan.duplicates(index):
                    copies = 2
                    self.stats.duplicated += 1
                extra = plan.delay_of(index)
                if extra:
                    arrival += extra
                    self.stats.delayed += 1
            for copy in range(copies):
                self._in_flight.setdefault(arrival, []).append(
                    (index * 2 + copy, src, dest, payload)
                )

    # -- lifecycle ---------------------------------------------------------
    def _start(self, program: NodeProgram, states) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(self.n_nodes)
        listener.settimeout(0.2)
        self._listener = listener
        port = listener.getsockname()[1]
        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        for i in range(self.n_nodes):
            proc = ctx.Process(
                target=_worker_main,
                args=(i, self.n_nodes, port, program, states[i], self.heartbeat_interval),
                daemon=True,
                name=f"repro-node-{i}",
            )
            proc.start()
            self._procs[i] = proc
        deadline = time.monotonic() + self.startup_timeout
        pending = set(range(self.n_nodes))
        while pending and time.monotonic() < deadline:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn.settimeout(5.0)
            try:
                hello = _recv_msg(conn)
            except (OSError, ConnectionError, CodecError):
                conn.close()
                continue
            if hello[0] != "hello" or hello[1] not in pending:
                conn.close()
                continue
            node_id = hello[1]
            conn.settimeout(None)
            pending.discard(node_id)
            self._conns[node_id] = conn
            self._last_seen[node_id] = time.monotonic()
            threading.Thread(
                target=self._reader,
                args=(node_id, conn),
                daemon=True,
                name=f"reader-{node_id}",
            ).start()
        for i in sorted(pending):
            # a worker that never reported in is lost before superstep 0
            self._declare_dead(i, 0, scheduled=False)
            proc = self._procs[i]
            exitcode = proc.exitcode if proc is not None else None
            if len(pending) == self.n_nodes:
                raise WorkerLostError(
                    f"no worker connected within {self.startup_timeout}s "
                    f"(worker {i} exitcode={exitcode})",
                    rank=i,
                    superstep=0,
                    exitcode=exitcode,
                )

    def _drive(self) -> list:
        plan = self.fault_plan
        stats = self.stats
        for superstep in range(self.max_supersteps):
            if plan is not None:
                for i in range(self.n_nodes):
                    if i not in self._crashed and plan.crash_superstep(i) == superstep:
                        self._declare_dead(i, superstep, scheduled=True)
            if len(self._crashed) == self.n_nodes:
                raise CrashedNodeError(
                    f"all {self.n_nodes} nodes crashed by superstep {superstep}",
                    superstep=superstep,
                )
            stats.supersteps += 1
            due = self._in_flight.pop(superstep, [])
            due.sort(key=lambda m: (m[1], m[0]))  # sender id, then send order
            inboxes: list[list[tuple[int, bytes]]] = [[] for _ in range(self.n_nodes)]
            for _, src, dest, payload in due:
                if dest in self._crashed:
                    stats.dropped += 1
                else:
                    inboxes[dest].append((src, payload))
            for i in range(self.n_nodes):
                if i in self._crashed:
                    continue
                try:
                    self._send(i, ("step", superstep, inboxes[i]))
                except OSError:
                    self._declare_dead(i, superstep, scheduled=False)
            outboxes: dict[int, list] = {}
            slowest = 0.0
            for i in range(self.n_nodes):
                if i in self._crashed:
                    continue
                msg = self._await(i, "done", superstep)
                if msg is None:
                    continue
                _, _step, outbox, is_done, elapsed, delta = msg
                for field, value in delta.items():
                    setattr(stats, field, getattr(stats, field) + value)
                if plan is not None:
                    elapsed *= plan.slow_factor(i)
                stats.compute_seconds_per_node[i] += elapsed
                slowest = max(slowest, elapsed)
                self._done[i] = is_done
                outboxes[i] = outbox
            stats._modelled += slowest
            for i in sorted(outboxes):  # node-id order = sim's global indexing
                self._route(i, outboxes[i], superstep)
            if all(self._done) and not self._in_flight:
                return self._collect_finals(superstep)
        raise ParallelExecutionError(
            f"cluster did not terminate within {self.max_supersteps} supersteps"
        )

    def _collect_finals(self, superstep: int) -> list:
        finals: list = [None] * self.n_nodes
        for i in range(self.n_nodes):
            if i in self._crashed:
                continue
            try:
                self._send(i, ("stop",))
            except OSError:
                self._declare_dead(i, superstep, scheduled=False)
                continue
            msg = self._await(i, "final", superstep)
            if msg is not None:
                finals[i] = msg[1]
        return finals

    def _shutdown(self) -> None:
        for i, proc in enumerate(self._procs):
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        for conn in self._conns:
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def run(self, program: NodeProgram, states) -> list:
        """Execute supersteps until every live node voted DONE.

        Semantics match :meth:`SimCluster.run`, except that a crashed
        node's entry in the returned list is ``None`` (its memory died
        with the process) and unscheduled deaths — a worker killed from
        outside, wedged, or exiting on its own — are detected by the
        heartbeat monitor and treated exactly like scheduled crashes.
        """
        if self._used:
            raise ParallelExecutionError(
                "a ProcessCluster instance is single-shot; create a new one"
            )
        self._used = True
        if len(states) != self.n_nodes:
            raise ParallelExecutionError(
                f"expected {self.n_nodes} initial states, got {len(states)}"
            )
        try:
            self._start(program, list(states))
            return self._drive()
        finally:
            self._shutdown()
