"""Seeded, deterministic fault injection for the cluster simulator.

A :class:`FaultPlan` tells :class:`~repro.parallel.simcluster.SimCluster`
which failures to inject and where.  Faults address messages by their
**global send index** — the ``i``-th ``ctx.send`` the whole cluster
performs during the run (nodes execute in id order within a superstep, so
the numbering is deterministic) — and nodes by id:

* ``drop`` / ``corrupt`` / ``duplicate`` — explicit message indices;
* ``delay`` — ``{message index: extra supersteps}``;
* ``*_rate`` — per-message Bernoulli faults drawn from ``seed`` (each
  fault type uses an independent, reproducible stream);
* ``crashes`` — ``{node id: superstep}``: the node is killed at the
  *start* of that superstep — it never executes again, its volatile state
  is gone, and anything later addressed to it vanishes;
* ``slow_nodes`` — ``{node id: factor}``: scales the node's accounted
  compute time (a straggler model for the BSP makespan).

Decisions are pure functions of ``(seed, index)`` / ``(seed, node)``;
running the same plan twice yields identical fault schedules, identical
:class:`ClusterStats` fault counters, and — because the recovery protocol
is deterministic too — identical mining output.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import ParallelExecutionError

__all__ = ["FaultPlan"]


def _frozen(indices) -> frozenset[int]:
    out = frozenset(int(i) for i in indices)
    if any(i < 0 for i in out):
        raise ParallelExecutionError("message indices must be >= 0")
    return out


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of every fault to inject into one run."""

    seed: int = 0
    drop: frozenset[int] = frozenset()
    corrupt: frozenset[int] = frozenset()
    duplicate: frozenset[int] = frozenset()
    delay: Mapping[int, int] = field(default_factory=dict)
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_random_delay: int = 3
    crashes: Mapping[int, int] = field(default_factory=dict)
    slow_nodes: Mapping[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "drop", _frozen(self.drop))
        object.__setattr__(self, "corrupt", _frozen(self.corrupt))
        object.__setattr__(self, "duplicate", _frozen(self.duplicate))
        object.__setattr__(self, "delay", dict(self.delay))
        object.__setattr__(self, "crashes", dict(self.crashes))
        object.__setattr__(self, "slow_nodes", dict(self.slow_nodes))
        for name in ("drop_rate", "corrupt_rate", "duplicate_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ParallelExecutionError(f"{name} must be in [0, 1], got {rate}")
        if any(d < 0 for d in self.delay.values()):
            raise ParallelExecutionError("delays must be >= 0 supersteps")
        if self.max_random_delay < 0:
            raise ParallelExecutionError("max_random_delay must be >= 0")
        if any(s < 0 for s in self.crashes.values()):
            raise ParallelExecutionError("crash supersteps must be >= 0")
        if any(f < 1.0 for f in self.slow_nodes.values()):
            raise ParallelExecutionError("slow factors must be >= 1")

    # -- per-message decisions (pure in (seed, kind, index)) ---------------
    def _hit(self, kind: str, index: int, rate: float) -> bool:
        if rate <= 0.0:
            return False
        return random.Random(f"{self.seed}:{kind}:{index}").random() < rate

    def drops(self, index: int) -> bool:
        return index in self.drop or self._hit("drop", index, self.drop_rate)

    def corrupts(self, index: int) -> bool:
        return index in self.corrupt or self._hit("corrupt", index, self.corrupt_rate)

    def duplicates(self, index: int) -> bool:
        return index in self.duplicate or self._hit("dup", index, self.duplicate_rate)

    def delay_of(self, index: int) -> int:
        if index in self.delay:
            return self.delay[index]
        if self._hit("delay", index, self.delay_rate) and self.max_random_delay:
            return random.Random(f"{self.seed}:delaylen:{index}").randint(
                1, self.max_random_delay
            )
        return 0

    def corrupt_payload(self, index: int, payload: bytes) -> bytes:
        """Flip one deterministic bit of ``payload`` (identity on empty)."""
        if not payload:
            return payload
        rng = random.Random(f"{self.seed}:corruptbyte:{index}")
        data = bytearray(payload)
        data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
        return bytes(data)

    # -- per-node decisions ------------------------------------------------
    def crash_superstep(self, node_id: int) -> int | None:
        return self.crashes.get(node_id)

    def slow_factor(self, node_id: int) -> float:
        return self.slow_nodes.get(node_id, 1.0)

    def describe(self) -> dict:
        """Compact summary (for logs and the ``chaos`` CLI)."""
        return {
            "seed": self.seed,
            "scripted": {
                "drop": sorted(self.drop),
                "corrupt": sorted(self.corrupt),
                "duplicate": sorted(self.duplicate),
                "delay": dict(sorted(self.delay.items())),
            },
            "rates": {
                "drop": self.drop_rate,
                "corrupt": self.corrupt_rate,
                "duplicate": self.duplicate_rate,
                "delay": self.delay_rate,
            },
            "crashes": dict(sorted(self.crashes.items())),
            "slow_nodes": dict(sorted(self.slow_nodes.items())),
        }
