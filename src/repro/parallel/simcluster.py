"""A deterministic message-passing cluster simulator.

The paper was published at ICPP and argues the PLT "provides partition
criteria that makes it easy to partition the mining process into several
separate tasks".  Evaluating that claim properly needs a *distributed*
setting — nodes with private memories exchanging messages — which this
repository cannot get from real hardware (the reference container has one
core and no network).  Per the substitution rule (DESIGN.md §2) we build
the closest synthetic equivalent: a synchronous message-passing simulator
that executes node programs deterministically and *accounts for every
byte communicated*, so distributed algorithms can be compared on
communication volume and per-node compute — the metrics the parallel
mining literature (Agrawal & Shafer '96; Han, Karypis & Kumar '97)
actually reports.

Model
-----
* ``n_nodes`` nodes, each running the same :class:`NodeProgram` over a
  private data partition.
* Execution proceeds in **supersteps** (BSP style): within a superstep a
  node computes and calls :meth:`NodeContext.send`; messages are
  delivered at the start of the next superstep via
  :meth:`NodeContext.inbox`.
* Payloads must be ``bytes`` — node programs serialize explicitly (the
  PLT codec makes this natural), and the simulator charges
  ``len(payload) + HEADER_BYTES`` per message to both endpoints' traffic
  counters.
* Per-node compute time is measured with a wall clock while the node's
  step function runs; since nodes run sequentially in the simulator, the
  *modelled* parallel runtime of a superstep is the max over nodes.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import ParallelExecutionError

__all__ = ["SimCluster", "NodeContext", "ClusterStats", "HEADER_BYTES"]

#: Fixed per-message envelope cost charged by the accounting model.
HEADER_BYTES = 16


@dataclass
class ClusterStats:
    """Aggregate accounting for one simulated run."""

    n_nodes: int
    supersteps: int = 0
    messages: int = 0
    bytes_sent: int = 0
    compute_seconds_per_node: list[float] = field(default_factory=list)

    @property
    def total_compute_seconds(self) -> float:
        return sum(self.compute_seconds_per_node)

    @property
    def modelled_parallel_seconds(self) -> float:
        """Sum over supersteps of the slowest node — the BSP makespan.

        Tracked incrementally by the cluster; equals
        ``sum(max over nodes per superstep)``.
        """
        return self._modelled

    _modelled: float = 0.0

    def summary(self) -> dict:
        return {
            "n_nodes": self.n_nodes,
            "supersteps": self.supersteps,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "total_compute_s": round(self.total_compute_seconds, 4),
            "modelled_parallel_s": round(self.modelled_parallel_seconds, 4),
        }


class NodeContext:
    """What a node program sees: its id, its inbox, and a send primitive."""

    __slots__ = ("node_id", "n_nodes", "_inbox", "_outbox", "_stats")

    def __init__(self, node_id: int, n_nodes: int, stats: ClusterStats):
        self.node_id = node_id
        self.n_nodes = n_nodes
        self._inbox: list[tuple[int, bytes]] = []
        self._outbox: list[tuple[int, bytes]] = []
        self._stats = stats

    def inbox(self) -> list[tuple[int, bytes]]:
        """Messages delivered this superstep, as ``(sender, payload)``."""
        return list(self._inbox)

    def send(self, dest: int, payload: bytes) -> None:
        """Queue a message for delivery next superstep."""
        if not 0 <= dest < self.n_nodes:
            raise ParallelExecutionError(
                f"node {self.node_id} sent to invalid node {dest}"
            )
        if not isinstance(payload, (bytes, bytearray)):
            raise ParallelExecutionError(
                "simulated messages must be bytes (serialize explicitly); "
                f"got {type(payload).__name__}"
            )
        payload = bytes(payload)
        self._outbox.append((dest, payload))
        self._stats.messages += 1
        self._stats.bytes_sent += len(payload) + HEADER_BYTES

    def broadcast(self, payload: bytes, *, include_self: bool = False) -> None:
        for dest in range(self.n_nodes):
            if dest != self.node_id or include_self:
                self.send(dest, payload)


#: A node program: ``step(ctx, superstep, state) -> state`` returning the
#: node's updated private state; return ``StopIteration`` sentinel via
#: ``SimCluster.DONE`` to vote for termination.
NodeProgram = Callable


class SimCluster:
    """Run a node program to completion over private partitions.

    >>> def program(ctx, superstep, state):
    ...     if superstep == 0:
    ...         ctx.broadcast(bytes([ctx.node_id]))
    ...         return state
    ...     return SimCluster.DONE
    >>> cluster = SimCluster(3)
    >>> _ = cluster.run(program, [None] * 3)
    >>> cluster.stats.messages
    6
    """

    #: Sentinel a node returns to vote for termination.
    DONE = object()

    def __init__(self, n_nodes: int, *, max_supersteps: int = 10_000):
        if n_nodes < 1:
            raise ParallelExecutionError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self.max_supersteps = max_supersteps
        self.stats = ClusterStats(n_nodes=n_nodes)
        self.stats.compute_seconds_per_node = [0.0] * n_nodes

    def run(self, program: NodeProgram, states: Sequence) -> list:
        """Execute supersteps until every node returned ``DONE``.

        ``states`` holds each node's private initial state (e.g. its data
        partition); the final states are returned.  A node that has voted
        DONE is still woken while others run (it may receive messages),
        matching BSP semantics; termination requires *all* nodes voting
        DONE in the same superstep with no messages in flight.
        """
        if len(states) != self.n_nodes:
            raise ParallelExecutionError(
                f"expected {self.n_nodes} initial states, got {len(states)}"
            )
        contexts = [NodeContext(i, self.n_nodes, self.stats) for i in range(self.n_nodes)]
        states = list(states)
        done = [False] * self.n_nodes
        for superstep in range(self.max_supersteps):
            self.stats.supersteps += 1
            slowest = 0.0
            any_messages = False
            for i, ctx in enumerate(contexts):
                start = time.perf_counter()
                result = program(ctx, superstep, states[i])
                elapsed = time.perf_counter() - start
                self.stats.compute_seconds_per_node[i] += elapsed
                slowest = max(slowest, elapsed)
                if result is SimCluster.DONE:
                    done[i] = True
                else:
                    done[i] = False
                    states[i] = result
                if ctx._outbox:
                    any_messages = True
            self.stats._modelled += slowest
            # deliver
            for ctx in contexts:
                ctx._inbox = []
            for ctx in contexts:
                for dest, payload in ctx._outbox:
                    contexts[dest]._inbox.append((ctx.node_id, payload))
                ctx._outbox = []
            for ctx in contexts:
                ctx._inbox.sort(key=lambda m: m[0])  # deterministic order
            if all(done) and not any_messages:
                return states
        raise ParallelExecutionError(
            f"cluster did not terminate within {self.max_supersteps} supersteps"
        )
