"""A deterministic message-passing cluster simulator.

The paper was published at ICPP and argues the PLT "provides partition
criteria that makes it easy to partition the mining process into several
separate tasks".  Evaluating that claim properly needs a *distributed*
setting — nodes with private memories exchanging messages — which this
repository cannot get from real hardware (the reference container has one
core and no network).  Per the substitution rule (DESIGN.md §2) we build
the closest synthetic equivalent: a synchronous message-passing simulator
that executes node programs deterministically and *accounts for every
byte communicated*, so distributed algorithms can be compared on
communication volume and per-node compute — the metrics the parallel
mining literature (Agrawal & Shafer '96; Han, Karypis & Kumar '97)
actually reports.

Model
-----
* ``n_nodes`` nodes, each running the same :class:`NodeProgram` over a
  private data partition.
* Execution proceeds in **supersteps** (BSP style): within a superstep a
  node computes and calls :meth:`NodeContext.send`; messages are
  delivered at the start of the next superstep via
  :meth:`NodeContext.inbox`.
* Payloads must be ``bytes`` — node programs serialize explicitly (the
  PLT codec makes this natural), and the simulator charges
  ``len(payload) + HEADER_BYTES`` per message to both endpoints' traffic
  counters.
* Per-node compute time is measured with a wall clock while the node's
  step function runs; since nodes run sequentially in the simulator, the
  *modelled* parallel runtime of a superstep is the max over nodes.

Fault injection
---------------
A :class:`~repro.parallel.faults.FaultPlan` makes the network and the
nodes unreliable, deterministically: individual messages can be dropped,
duplicated, corrupted (one bit flipped) or delayed extra supersteps, a
node can be slowed by a straggler factor, and a node can be **crashed**
at a chosen superstep boundary — it stops executing, its volatile state
is lost, and messages addressed to it disappear.  Every injected fault is
tallied in :class:`ClusterStats`, and the recovery work done by resilient
node programs (retransmits, rejected frames, failovers) is tallied next
to it, so a chaos run is as measurable as a clean one.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import CrashedNodeError, MiningInterrupted, ParallelExecutionError
from repro.parallel.faults import FaultPlan

__all__ = ["SimCluster", "NodeContext", "ClusterStats", "HEADER_BYTES"]

#: Fixed per-message envelope cost charged by the accounting model.
HEADER_BYTES = 16


@dataclass
class ClusterStats:
    """Aggregate accounting for one simulated run.

    The first group of fields measures useful work, the second the faults
    the :class:`~repro.parallel.faults.FaultPlan` injected, and the third
    the recovery activity of the node programs (incremented through
    :attr:`NodeContext.stats` by the reliable channel / failover layer).
    """

    n_nodes: int
    supersteps: int = 0
    messages: int = 0
    bytes_sent: int = 0
    compute_seconds_per_node: list[float] = field(default_factory=list)
    _modelled: float = 0.0
    # injected faults
    dropped: int = 0
    corrupted: int = 0
    duplicated: int = 0
    delayed: int = 0
    crashed_nodes: list[int] = field(default_factory=list)
    # recovery activity (owned by the protocol layer, not the simulator)
    retransmits: int = 0
    rejected_frames: int = 0
    failovers: int = 0
    checkpoint_writes: int = 0
    checkpoint_reads: int = 0
    # liveness & failover (protocol-level counters are deterministic;
    # transport heartbeats are timing-dependent and live in summary() only)
    heartbeats_sent: int = 0
    heartbeats_missed: int = 0
    workers_declared_dead: int = 0
    ranks_resharded: int = 0
    supersteps_replayed: int = 0

    @property
    def total_compute_seconds(self) -> float:
        return sum(self.compute_seconds_per_node)

    @property
    def modelled_parallel_seconds(self) -> float:
        """Sum over supersteps of the slowest node — the BSP makespan.

        Tracked incrementally by the cluster; equals
        ``sum(max over nodes per superstep)``.
        """
        return self._modelled

    def deterministic_summary(self) -> dict:
        """Everything in :meth:`summary` except the wall-clock timings.

        Two runs of the same program under the same
        :class:`~repro.parallel.faults.FaultPlan` seed produce *identical*
        deterministic summaries (the chaos suite asserts this).
        """
        return {
            "n_nodes": self.n_nodes,
            "supersteps": self.supersteps,
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "crashed_nodes": list(self.crashed_nodes),
            "retransmits": self.retransmits,
            "rejected_frames": self.rejected_frames,
            "failovers": self.failovers,
            "checkpoint_writes": self.checkpoint_writes,
            "checkpoint_reads": self.checkpoint_reads,
            "workers_declared_dead": self.workers_declared_dead,
            "ranks_resharded": self.ranks_resharded,
            "supersteps_replayed": self.supersteps_replayed,
        }

    def liveness_summary(self) -> dict:
        """The failure-detection and failover counters, on their own.

        ``heartbeats_*`` are transport-level and timing-dependent on the
        process backend, so they are excluded from
        :meth:`deterministic_summary`; the rest are protocol-level and
        deterministic under a seeded fault plan.
        """
        return {
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_missed": self.heartbeats_missed,
            "workers_declared_dead": self.workers_declared_dead,
            "ranks_resharded": self.ranks_resharded,
            "supersteps_replayed": self.supersteps_replayed,
        }

    def summary(self) -> dict:
        out = self.deterministic_summary()
        out["heartbeats_sent"] = self.heartbeats_sent
        out["heartbeats_missed"] = self.heartbeats_missed
        out["total_compute_s"] = round(self.total_compute_seconds, 4)
        out["modelled_parallel_s"] = round(self.modelled_parallel_seconds, 4)
        return out


class NodeContext:
    """What a node program sees: its id, its inbox, and a send primitive."""

    __slots__ = ("node_id", "n_nodes", "_inbox", "_outbox", "_stats")

    def __init__(self, node_id: int, n_nodes: int, stats: ClusterStats):
        self.node_id = node_id
        self.n_nodes = n_nodes
        self._inbox: list[tuple[int, bytes]] = []
        self._outbox: list[tuple[int, bytes]] = []
        self._stats = stats

    @property
    def stats(self) -> ClusterStats:
        """The run's shared accounting object (counters only, no control)."""
        return self._stats

    def inbox(self) -> list[tuple[int, bytes]]:
        """Messages delivered this superstep, as ``(sender, payload)``."""
        return list(self._inbox)

    def send(self, dest: int, payload: bytes) -> None:
        """Queue a message for delivery next superstep."""
        if not 0 <= dest < self.n_nodes:
            raise ParallelExecutionError(
                f"node {self.node_id} sent to invalid node {dest}"
            )
        if not isinstance(payload, (bytes, bytearray)):
            raise ParallelExecutionError(
                "simulated messages must be bytes (serialize explicitly); "
                f"got {type(payload).__name__}"
            )
        payload = bytes(payload)
        self._outbox.append((dest, payload))
        self._stats.messages += 1
        self._stats.bytes_sent += len(payload) + HEADER_BYTES

    def broadcast(self, payload: bytes, *, include_self: bool = False) -> None:
        for dest in range(self.n_nodes):
            if dest != self.node_id or include_self:
                self.send(dest, payload)


#: A node program: ``step(ctx, superstep, state) -> state`` returning the
#: node's updated private state; return ``StopIteration`` sentinel via
#: ``SimCluster.DONE`` to vote for termination.
NodeProgram = Callable


class SimCluster:
    """Run a node program to completion over private partitions.

    >>> def program(ctx, superstep, state):
    ...     if superstep == 0:
    ...         ctx.broadcast(bytes([ctx.node_id]))
    ...         return state
    ...     return SimCluster.DONE
    >>> cluster = SimCluster(3)
    >>> _ = cluster.run(program, [None] * 3)
    >>> cluster.stats.messages
    6
    """

    #: Sentinel a node returns to vote for termination.
    DONE = object()

    def __init__(
        self,
        n_nodes: int,
        *,
        max_supersteps: int = 10_000,
        fault_plan: FaultPlan | None = None,
    ):
        if n_nodes < 1:
            raise ParallelExecutionError("n_nodes must be >= 1")
        self.n_nodes = n_nodes
        self.max_supersteps = max_supersteps
        self.fault_plan = fault_plan
        self.stats = ClusterStats(n_nodes=n_nodes)
        self.stats.compute_seconds_per_node = [0.0] * n_nodes
        self._msg_counter = 0
        #: messages on the wire: superstep -> [(order, src, dest, payload)]
        self._in_flight: dict[int, list[tuple[int, int, int, bytes]]] = {}

    # -- wire -------------------------------------------------------------
    def _post_outboxes(self, contexts: list[NodeContext], superstep: int) -> None:
        """Apply the fault plan to every send and schedule deliveries."""
        plan = self.fault_plan
        for ctx in contexts:
            for dest, payload in ctx._outbox:
                index = self._msg_counter
                self._msg_counter += 1
                arrival = superstep + 1
                copies = 1
                if plan is not None:
                    if plan.drops(index):
                        self.stats.dropped += 1
                        continue
                    if plan.corrupts(index):
                        payload = plan.corrupt_payload(index, payload)
                        self.stats.corrupted += 1
                    if plan.duplicates(index):
                        copies = 2
                        self.stats.duplicated += 1
                    extra = plan.delay_of(index)
                    if extra:
                        arrival += extra
                        self.stats.delayed += 1
                for copy in range(copies):
                    self._in_flight.setdefault(arrival, []).append(
                        (index * 2 + copy, ctx.node_id, dest, payload)
                    )
            ctx._outbox = []

    def _deliver(self, contexts: list[NodeContext], superstep: int, crashed: set[int]) -> None:
        due = self._in_flight.pop(superstep, [])
        due.sort(key=lambda m: (m[1], m[0]))  # sender id, then send order
        for _, src, dest, payload in due:
            if dest in crashed:
                self.stats.dropped += 1
                continue
            contexts[dest]._inbox.append((src, payload))

    # -- execution --------------------------------------------------------
    def run(self, program: NodeProgram, states: Sequence) -> list:
        """Execute supersteps until every node returned ``DONE``.

        ``states`` holds each node's private initial state (e.g. its data
        partition); the final states are returned.  A node that has voted
        DONE is still woken while others run (it may receive messages),
        matching BSP semantics; termination requires *all* live nodes
        voting DONE in the same superstep with nothing left on the wire.

        A crashed node (fault injection) counts as permanently DONE; its
        entry in the returned list is its last state before the crash.
        Exceptions a node program raises are wrapped in
        :class:`ParallelExecutionError` carrying the node id and superstep
        (library errors that already are ``ParallelExecutionError``
        propagate unchanged).
        """
        if len(states) != self.n_nodes:
            raise ParallelExecutionError(
                f"expected {self.n_nodes} initial states, got {len(states)}"
            )
        plan = self.fault_plan
        contexts = [NodeContext(i, self.n_nodes, self.stats) for i in range(self.n_nodes)]
        states = list(states)
        done = [False] * self.n_nodes
        crashed: set[int] = set()
        for superstep in range(self.max_supersteps):
            if plan is not None:
                for i in range(self.n_nodes):
                    if i not in crashed and plan.crash_superstep(i) == superstep:
                        crashed.add(i)
                        self.stats.crashed_nodes.append(i)
                        done[i] = True
                if len(crashed) == self.n_nodes:
                    raise CrashedNodeError(
                        f"all {self.n_nodes} nodes crashed by superstep {superstep}",
                        superstep=superstep,
                    )
            self.stats.supersteps += 1
            self._deliver(contexts, superstep, crashed)
            slowest = 0.0
            for i, ctx in enumerate(contexts):
                if i in crashed:
                    ctx._inbox = []
                    continue
                start = time.perf_counter()
                try:
                    result = program(ctx, superstep, states[i])
                except (ParallelExecutionError, MiningInterrupted):
                    # budget/cancellation trips carry partial results the
                    # driver must see intact — never wrap them
                    raise
                except Exception as exc:
                    raise ParallelExecutionError(
                        f"node {i} failed at superstep {superstep}: {exc!r}",
                        node_id=i,
                        superstep=superstep,
                    ) from exc
                elapsed = time.perf_counter() - start
                if plan is not None:
                    elapsed *= plan.slow_factor(i)
                self.stats.compute_seconds_per_node[i] += elapsed
                slowest = max(slowest, elapsed)
                if result is SimCluster.DONE:
                    done[i] = True
                else:
                    done[i] = False
                    states[i] = result
                ctx._inbox = []
            self.stats._modelled += slowest
            self._post_outboxes(contexts, superstep)
            if all(done) and not self._in_flight:
                return states
        raise ParallelExecutionError(
            f"cluster did not terminate within {self.max_supersteps} supersteps"
        )
