"""Task partitioning for parallel PLT mining.

The paper (Section 6) highlights that the PLT "provides partition criteria
that makes it easy to partition the mining process into several separate
tasks; each can be accomplished separately."  Concretely:

* **Conditional mining** decomposes by *top-level item*: after a single
  sequential migration sweep (cheap — one pass over all positions), each
  item's complete conditional database is an independent mining task.
  :func:`conditional_tasks` produces them.
* **Top-down mining** decomposes by *seed vector*: every stored vector's
  subset expansion is independent and partial frequency tables merge by
  addition.  :func:`split_vectors` slices the vector table.

Load balancing uses LPT (longest-processing-time-first greedy) with a task
size estimate; LPT is within 4/3 of optimal for makespan, plenty for the
coarse tasks here.
"""

from __future__ import annotations

from heapq import heappush, heappop
from typing import Sequence, TypeVar

from repro.core.conditional import _consume_bucket  # shared sweep logic
from repro.core.plt import PLT
from repro.core.position import PositionVector
from repro.errors import InvalidParameterError

__all__ = ["ConditionalTask", "conditional_tasks", "lpt_partition", "split_vectors"]

T = TypeVar("T")


class ConditionalTask:
    """One independent top-level mining task: item rank + its conditional DB."""

    __slots__ = ("rank", "support", "prefixes")

    def __init__(self, rank: int, support: int, prefixes: dict[PositionVector, int]):
        self.rank = rank
        self.support = support
        self.prefixes = prefixes

    def cost_estimate(self) -> int:
        """Positions in the conditional DB — a proxy for recursion work."""
        return sum(len(v) for v in self.prefixes) + 1

    def __repr__(self) -> str:
        return (
            f"ConditionalTask(rank={self.rank}, support={self.support}, "
            f"n_prefixes={len(self.prefixes)})"
        )


def conditional_tasks(plt: PLT, min_support: int) -> list[ConditionalTask]:
    """The sequential migration sweep, yielding every item's task.

    Exactly Algorithm 3's top-level loop with the recursion deferred:
    buckets are consumed in descending rank order, prefixes migrated, and
    each rank's ``(support, CD_j)`` captured.  Infrequent ranks still
    migrate (their transactions support lower-ranked items) but produce no
    task.
    """
    buckets = plt.sum_index()
    tasks: list[ConditionalTask] = []
    for j in range(max(buckets, default=0), 0, -1):
        bucket = buckets.pop(j, None)
        if bucket is None:
            continue
        cd, support = _consume_bucket(bucket, buckets)
        if support >= min_support:
            tasks.append(ConditionalTask(j, support, cd))
    return tasks


def lpt_partition(items: Sequence[T], sizes: Sequence[int], n_bins: int) -> list[list[T]]:
    """Greedy LPT: assign each item (descending size) to the lightest bin."""
    if n_bins < 1:
        raise InvalidParameterError("n_bins must be >= 1")
    bins: list[list[T]] = [[] for _ in range(n_bins)]
    if not items:
        return bins
    heap: list[tuple[int, int]] = [(0, b) for b in range(n_bins)]
    order = sorted(range(len(items)), key=lambda i: -sizes[i])
    for idx in order:
        load, b = heappop(heap)
        bins[b].append(items[idx])
        heappush(heap, (load + sizes[idx], b))
    return bins


def split_vectors(
    plt: PLT, n_parts: int
) -> list[dict[PositionVector, int]]:
    """Slice the vector table for parallel top-down expansion.

    Each vector's expansion cost is ~``2^len``, which the LPT sizes use, so
    long vectors spread across workers instead of clumping.
    """
    pairs = list(plt.iter_vectors())
    sizes = [1 << min(len(vec), 30) for vec, _ in pairs]
    bins = lpt_partition(pairs, sizes, n_parts)
    return [dict(b) for b in bins]
