"""Count-distribution parallel Apriori (Agrawal & Shafer, TKDE 1996).

The classic data-parallel frequent-itemset scheme the paper's ICPP
audience knew ([11], [14], [15]): ``n_nodes`` processes each hold a
horizontal slice of the database; at every level each node counts the
*identical* candidate set over its slice, and a global all-reduce sums
the per-node counters.  Only counters cross node boundaries — the data
never moves.

On this machine the "nodes" are either simulated sequentially (default —
deterministic, no process overhead, exercises the same message pattern)
or real worker processes (``use_processes=True``).  Results are exact and
equal to serial Apriori (tests assert this), since count distribution is
lossless by construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Hashable

from repro.baselines.apriori import CandidateTrie, generate_candidates
from repro.baselines.partition import split_database
from repro.core.rank import sort_key
from repro.data.transaction_db import item_supports
from repro.errors import InvalidParameterError

__all__ = ["mine_count_distribution", "node_level_counts"]

Item = Hashable


def node_level_counts(
    encoded_slice: Sequence[tuple[int, ...]], candidates: list[tuple[int, ...]]
) -> dict[tuple[int, ...], int]:
    """One node's local counting step for one level (the map side)."""
    trie = CandidateTrie(candidates)
    k = len(candidates[0]) if candidates else 0
    for t in encoded_slice:
        if len(t) >= k:
            trie.count_transaction(t)
    return trie.counts()


def _worker(args):
    return node_level_counts(*args)


def mine_count_distribution(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    n_nodes: int = 4,
    max_len: int | None = None,
    use_processes: bool = False,
) -> dict[frozenset, int]:
    """Run count-distribution Apriori; ``{itemset -> absolute support}``."""
    if n_nodes < 1:
        raise InvalidParameterError("n_nodes must be >= 1")
    db = [frozenset(t) for t in transactions]
    # level 1 is itself an all-reduce of per-slice item counts
    slices = split_database(db, n_nodes)
    global_counts = item_supports(db)
    frequent_items = sorted(
        (i for i, s in global_counts.items() if s >= min_support), key=sort_key
    )
    ids = {item: idx for idx, item in enumerate(frequent_items)}
    labels = {idx: item for item, idx in ids.items()}
    result: dict[frozenset, int] = {
        frozenset((item,)): global_counts[item] for item in frequent_items
    }

    encoded_slices = [
        [tuple(sorted(ids[i] for i in t if i in ids)) for t in s] for s in slices
    ]
    encoded_slices = [[t for t in s if len(t) >= 2] for s in encoded_slices]

    frequent_k: set[tuple[int, ...]] = {(ids[i],) for i in frequent_items}
    k = 2
    while frequent_k and (max_len is None or k <= max_len):
        candidates = generate_candidates(frequent_k)
        if not candidates:
            break
        # map: every node counts the same candidates over its slice
        jobs = [(s, candidates) for s in encoded_slices if s]
        if use_processes and len(jobs) > 1:
            import multiprocessing as mp

            with mp.Pool(processes=min(len(jobs), 8)) as pool:
                partials = pool.map(_worker, jobs)
        else:
            partials = [node_level_counts(*job) for job in jobs]
        # reduce: all-reduce sum of counters
        totals: dict[tuple[int, ...], int] = {c: 0 for c in candidates}
        for partial in partials:
            for cand, n in partial.items():
                totals[cand] += n
        frequent_k = {c for c, n in totals.items() if n >= min_support}
        for cand in frequent_k:
            result[frozenset(labels[i] for i in cand)] = totals[cand]
        encoded_slices = [[t for t in s if len(t) > k] for s in encoded_slices]
        k += 1
    return result
