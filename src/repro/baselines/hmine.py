"""H-Mine — hyper-structure mining (Pei et al., ICDM 2001; reference [8]).

H-Mine keeps the (filtered, item-ordered) transactions in a flat array and
mines by *pseudo-projection*: the conditional database of an item is a list
of (transaction, offset) pointers rather than a copied structure.  This is
the memory-frugal middle ground between Apriori's rescanning and
FP-growth's materialised conditional trees, and the first of the
"FP-growth is not always best on sparse data" responses the paper cites.

This implementation realises the hyper-structure as lists of
``(transaction_index, position)`` queues per item, recursing over suffix
items in support-ascending order.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable

from repro.core.rank import sort_key
from repro.data.transaction_db import item_supports

__all__ = ["mine_hmine"]

Item = Hashable


def mine_hmine(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    max_len: int | None = None,
) -> dict[frozenset, int]:
    """Run H-Mine; returns ``{itemset -> absolute support}``."""
    transactions = [set(t) for t in transactions]
    supports = item_supports(transactions)
    frequent = {i: s for i, s in supports.items() if s >= min_support}
    # global order: ascending support (rare items first), deterministic ties
    order = {
        item: idx
        for idx, item in enumerate(
            sorted(frequent, key=lambda i: (frequent[i], sort_key(i)))
        )
    }
    labels = {idx: item for item, idx in order.items()}
    encoded: list[tuple[int, ...]] = []
    for t in transactions:
        row = tuple(sorted((order[i] for i in t if i in order)))
        if row:
            encoded.append(row)

    out: dict[frozenset, int] = {
        frozenset((item,)): sup for item, sup in frequent.items()
    }

    # A projection is a list of (row_index, start_offset): the suffix of
    # encoded[row] beginning at start_offset is the conditional transaction.
    def recurse(prefix_ids: tuple[int, ...], projection: list[tuple[int, int]]) -> None:
        # count items in the projected suffixes
        counts: dict[int, int] = {}
        for row_idx, start in projection:
            row = encoded[row_idx]
            for pos in range(start, len(row)):
                item_id = row[pos]
                counts[item_id] = counts.get(item_id, 0) + 1
        for item_id in sorted(counts):
            support = counts[item_id]
            if support < min_support:
                continue
            itemset_ids = prefix_ids + (item_id,)
            if prefix_ids:
                out[frozenset(labels[i] for i in itemset_ids)] = support
            if max_len is not None and len(itemset_ids) >= max_len:
                continue
            # build the child projection: pointers just past item_id
            child: list[tuple[int, int]] = []
            for row_idx, start in projection:
                row = encoded[row_idx]
                for pos in range(start, len(row)):
                    if row[pos] == item_id:
                        if pos + 1 < len(row):
                            child.append((row_idx, pos + 1))
                        break
                    if row[pos] > item_id:
                        break
            if child:
                recurse(itemset_ids, child)

    # top level: one projection per frequent item, built from a single scan
    top: dict[int, list[tuple[int, int]]] = {}
    for row_idx, row in enumerate(encoded):
        for pos, item_id in enumerate(row):
            if pos + 1 <= len(row):
                top.setdefault(item_id, []).append((row_idx, pos + 1))
    for item_id in sorted(top):
        item = labels[item_id]
        if max_len is not None and max_len <= 1:
            break
        projection = [(r, p) for r, p in top[item_id] if p < len(encoded[r])]
        if projection:
            recurse((item_id,), projection)
    return out
