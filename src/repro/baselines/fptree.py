"""FP-tree — the prefix-tree structure of Han, Pei & Yin (SIGMOD 2000).

The tree stores transactions as root-anchored paths over items sorted by
descending support; identical prefixes share nodes, and a header table
chains all nodes of each item (the node-links the paper's Section 6
contrasts with PLT's sum index).  :mod:`repro.baselines.fpgrowth` mines it.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable, Optional

from repro.core.rank import sort_key
from repro.data.transaction_db import item_supports

__all__ = ["FPNode", "FPTree"]

Item = Hashable


class FPNode:
    """One prefix-tree node: an item with a count, parent and node-link."""

    __slots__ = ("item", "count", "parent", "children", "link")

    def __init__(self, item: Item, parent: Optional["FPNode"]):
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict = {}
        self.link: FPNode | None = None

    def __repr__(self) -> str:
        return f"FPNode({self.item!r}, count={self.count})"

    def path_to_root(self) -> list[Item]:
        """Items on the path from this node's parent up to the root."""
        path = []
        node = self.parent
        while node is not None and node.item is not None:
            path.append(node.item)
            node = node.parent
        return path


class FPTree:
    """An FP-tree with header table; supports conditional-tree projection.

    Parameters
    ----------
    item_order:
        item -> sort key; smaller keys come first on root paths.  The
        canonical FP-tree order is descending support (most frequent items
        nearest the root), which maximises prefix sharing.
    """

    __slots__ = ("root", "header", "item_order", "min_support")

    def __init__(self, item_order: dict, min_support: int):
        self.root = FPNode(None, None)
        self.header: dict = {}  # item -> first FPNode in the link chain
        self.item_order = item_order
        self.min_support = min_support

    # ------------------------------------------------------------------
    @classmethod
    def from_transactions(
        cls, transactions: Iterable[Iterable[Item]], min_support: int
    ) -> "FPTree":
        """Two scans: count items, then insert support-ordered filtered paths."""
        transactions = [set(t) for t in transactions]
        supports = item_supports(transactions)
        frequent = {i: s for i, s in supports.items() if s >= min_support}
        # descending support; sort_key tiebreak for determinism
        order = {
            item: rank
            for rank, item in enumerate(
                sorted(frequent, key=lambda i: (-frequent[i], sort_key(i)))
            )
        }
        tree = cls(order, min_support)
        for t in transactions:
            path = sorted((i for i in t if i in order), key=order.__getitem__)
            if path:
                tree.insert(path, 1)
        return tree

    def insert(self, path: list, count: int) -> None:
        """Insert an already-ordered item path with the given count."""
        node = self.root
        for item in path:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item, node)
                node.children[item] = child
                # prepend to the item's node-link chain
                child.link = self.header.get(item)
                self.header[item] = child
            child.count += count
            node = child

    # ------------------------------------------------------------------
    def item_support(self, item: Item) -> int:
        """Total count along the item's node-link chain."""
        total = 0
        node = self.header.get(item)
        while node is not None:
            total += node.count
            node = node.link
        return total

    def items_bottom_up(self) -> list:
        """Header items from least to most frequent (the mining order)."""
        return sorted(self.header, key=self.item_order.__getitem__, reverse=True)

    def conditional_pattern_base(self, item: Item) -> list[tuple[list, int]]:
        """(prefix path, count) pairs for every occurrence of ``item``."""
        base = []
        node = self.header.get(item)
        while node is not None:
            path = node.path_to_root()
            if path:
                base.append((path, node.count))
            node = node.link
        return base

    def conditional_tree(self, item: Item) -> "FPTree":
        """The FP-tree of ``item``'s conditional pattern base."""
        base = self.conditional_pattern_base(item)
        counts: dict = {}
        for path, count in base:
            for i in path:
                counts[i] = counts.get(i, 0) + count
        frequent = {i for i, c in counts.items() if c >= self.min_support}
        order = {
            i: r
            for r, i in enumerate(
                sorted(frequent, key=lambda x: (-counts[x], sort_key(x)))
            )
        }
        tree = FPTree(order, self.min_support)
        for path, count in base:
            kept = sorted((i for i in path if i in frequent), key=order.__getitem__)
            if kept:
                tree.insert(kept, count)
        return tree

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.root.children

    def single_path(self) -> list[FPNode] | None:
        """The node list if the tree is a single chain, else None."""
        path = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            node = next(iter(node.children.values()))
            path.append(node)
        return path

    def n_nodes(self) -> int:
        """Total node count (benchmark B4's size metric)."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += len(node.children)
            stack.extend(node.children.values())
        return total
