"""Toivonen's sampling algorithm (VLDB 1996) — mine a sample, verify all.

The last of the era's scan-reduction ideas: mine a random sample at a
*lowered* threshold, then make one full pass counting the sample-frequent
itemsets **plus their negative border** (the minimal itemsets not found
frequent in the sample).  If no border itemset turns out globally
frequent, the result is provably complete; otherwise the border witnesses
a possible miss and the algorithm falls back (here: exact mining — the
original paper re-runs with an expanded candidate set).

The lowered threshold trades a bigger candidate set for a smaller failure
probability; ``lowering`` is the multiplicative factor applied to the
sample threshold.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from itertools import combinations
from typing import Hashable

from repro.core.mining import mine_frequent_itemsets
from repro.core.rank import sort_key
from repro.errors import InvalidParameterError

__all__ = ["mine_sampling", "negative_border"]

Item = Hashable


def negative_border(
    frequent: set[frozenset], items: Iterable[Item]
) -> set[frozenset]:
    """Minimal itemsets not in ``frequent`` whose subsets all are.

    Computed level-wise from the frequent set (Apriori-gen over each size
    plus the infrequent singletons).
    """
    border: set[frozenset] = set()
    items = list(items)
    frequent_singletons = {i for s in frequent for i in s}
    for item in items:
        if frozenset((item,)) not in frequent:
            border.add(frozenset((item,)))
    by_size: dict[int, set[frozenset]] = {}
    for s in frequent:
        by_size.setdefault(len(s), set()).add(s)
    for size, level in sorted(by_size.items()):
        # candidates one larger than each frequent set, all subsets frequent
        for base in level:
            for item in frequent_singletons:
                if item in base:
                    continue
                cand = base | {item}
                if cand in frequent or cand in border:
                    continue
                if all(
                    frozenset(sub) in frequent
                    for sub in combinations(sorted(cand, key=sort_key), size)
                ):
                    border.add(cand)
    return border


def mine_sampling(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    sample_fraction: float = 0.25,
    lowering: float = 0.8,
    seed: int = 0,
    max_len: int | None = None,
) -> tuple[dict[frozenset, int], dict]:
    """Run Toivonen's algorithm; returns ``(result, info)``.

    ``result`` is exact (``{itemset -> global support}``); ``info`` records
    what happened: sample size, candidate count, whether the negative
    border failed and the fallback ran.
    """
    db = [frozenset(t) for t in transactions]
    info = {
        "n_transactions": len(db),
        "sample_size": 0,
        "candidates": 0,
        "border_size": 0,
        "border_failures": 0,
        "fallback": False,
    }
    if not db:
        return {}, info
    if not 0 < sample_fraction <= 1:
        raise InvalidParameterError("sample_fraction must be in (0, 1]")
    if not 0 < lowering <= 1:
        raise InvalidParameterError("lowering must be in (0, 1]")

    rng = random.Random(seed)
    sample_size = max(1, int(round(sample_fraction * len(db))))
    sample = rng.sample(db, sample_size)
    info["sample_size"] = sample_size

    sample_threshold = max(1, int(lowering * min_support * sample_size / len(db)))
    sample_frequent = set(
        mine_frequent_itemsets(sample, sample_threshold, max_len=max_len).as_dict()
    )
    items = {i for t in db for i in t}
    border = negative_border(sample_frequent, items)
    if max_len is not None:
        border = {b for b in border if len(b) <= max_len}
    info["candidates"] = len(sample_frequent)
    info["border_size"] = len(border)

    # one full counting pass over candidates + border
    to_count = list(sample_frequent | border)
    counts = {c: 0 for c in to_count}
    by_size: dict[int, list[frozenset]] = {}
    for c in to_count:
        by_size.setdefault(len(c), []).append(c)
    for t in db:
        for size, group in by_size.items():
            if len(t) < size:
                continue
            for c in group:
                if c <= t:
                    counts[c] += 1

    failures = sum(1 for b in border if counts[b] >= min_support)
    info["border_failures"] = failures
    if failures:
        # a miss is possible: fall back to exact mining (one more pass
        # family; the original paper expands candidates instead)
        info["fallback"] = True
        exact = mine_frequent_itemsets(db, min_support, max_len=max_len).as_dict()
        return dict(exact), info
    # no border itemset reached the threshold (else we fell back), so the
    # surviving counts are exactly the sample-frequent sets that verified
    result = {c: n for c, n in counts.items() if n >= min_support}
    return result, info
