"""Baseline frequent-itemset miners implemented from their original papers.

These are the comparison points of the paper's related-work section:
Apriori and AprioriTid (candidate generation), Partition and DIC (scan
reduction), FP-growth (pattern growth on a prefix tree), Eclat/dEclat
(vertical layout), H-Mine (hyper-structure), plus a brute-force oracle
for testing.
"""

from repro.baselines.apriori import mine_apriori
from repro.baselines.aprioritid import mine_aprioritid
from repro.baselines.bruteforce import mine_bruteforce, support_counts_bruteforce
from repro.baselines.dic import mine_dic
from repro.baselines.eclat import mine_declat, mine_eclat
from repro.baselines.fpgrowth import fpgrowth_from_tree, mine_fpgrowth
from repro.baselines.fptree import FPNode, FPTree
from repro.baselines.hmine import mine_hmine
from repro.baselines.partition import mine_partition
from repro.baselines.sampling import mine_sampling, negative_border

__all__ = [
    "mine_apriori",
    "mine_aprioritid",
    "mine_bruteforce",
    "support_counts_bruteforce",
    "mine_dic",
    "mine_eclat",
    "mine_declat",
    "mine_fpgrowth",
    "fpgrowth_from_tree",
    "FPTree",
    "FPNode",
    "mine_hmine",
    "mine_partition",
    "mine_sampling",
    "negative_border",
]
