"""AprioriTid — Agrawal & Srikant, VLDB 1994 (the paper's reference [2]).

Apriori's sibling: after level 1 the raw database is never touched again.
Each transaction is replaced by the set of level-``k`` candidates it
contains (the paper's ``C̄_k``); a level-``(k+1)`` candidate is present in
a transaction iff both of its two *generating* ``k``-subsets are present
in the transaction's entry.  Entries that support no candidate are dropped,
so ``C̄_k`` shrinks as ``k`` grows — the property that makes AprioriTid win
late passes (and AprioriHybrid switch to it).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable

from repro.baselines.apriori import generate_candidates
from repro.core.rank import sort_key
from repro.data.transaction_db import item_supports

__all__ = ["mine_aprioritid"]

Item = Hashable


def mine_aprioritid(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    max_len: int | None = None,
) -> dict[frozenset, int]:
    """Run AprioriTid; returns ``{itemset -> absolute support}``."""
    transactions = [set(t) for t in transactions]
    supports = item_supports(transactions)
    frequent_items = sorted(
        (i for i, s in supports.items() if s >= min_support), key=sort_key
    )
    ids = {item: idx for idx, item in enumerate(frequent_items)}
    labels = {idx: item for item, idx in ids.items()}

    result: dict[frozenset, int] = {
        frozenset((item,)): supports[item] for item in frequent_items
    }
    # C̄_1: transaction -> set of frequent 1-candidates (as 1-tuples)
    cbar: list[set[tuple[int, ...]]] = []
    for t in transactions:
        entry = {(ids[i],) for i in t if i in ids}
        if len(entry) >= 2:
            cbar.append(entry)

    frequent_k: set[tuple[int, ...]] = {(ids[i],) for i in frequent_items}
    k = 2
    while frequent_k and cbar and (max_len is None or k <= max_len):
        candidates = generate_candidates(frequent_k)
        if not candidates:
            break
        # index each candidate by its two generating (k-1)-subsets
        counts = {c: 0 for c in candidates}
        by_generators = [
            (c, c[:-1], c[:-2] + (c[-1],)) for c in candidates
        ]
        next_cbar: list[set[tuple[int, ...]]] = []
        for entry in cbar:
            new_entry: set[tuple[int, ...]] = set()
            for cand, gen_a, gen_b in by_generators:
                if gen_a in entry and gen_b in entry:
                    counts[cand] += 1
                    new_entry.add(cand)
            if len(new_entry) >= 2:
                next_cbar.append(new_entry)
        cbar = next_cbar
        frequent_k = {c for c, n in counts.items() if n >= min_support}
        for cand in frequent_k:
            result[frozenset(labels[i] for i in cand)] = counts[cand]
        k += 1
    return result
