"""The Partition algorithm — Savasere, Omiecinski & Navathe, VLDB 1995.

Exactly two database scans, regardless of pattern length:

1. **Local phase** — the database is split into ``n_partitions`` chunks
   sized to fit memory; each chunk is mined *completely* (here with a
   vertical tidlist recursion) at the proportionally scaled-down local
   threshold.  Any globally frequent itemset must be locally frequent in
   at least one chunk (pigeonhole on supports), so the union of local
   results is a complete global candidate set.
2. **Global phase** — one counting pass over the whole database computes
   every candidate's exact support; false positives are discarded.

This is the two-scan guarantee the paper's related-work section cites,
and the ancestor of the PLT's own partition-friendliness argument.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Hashable

from repro.core.rank import sort_key
from repro.errors import InvalidParameterError

__all__ = ["mine_partition", "local_frequent_itemsets", "split_database"]

Item = Hashable


def split_database(
    transactions: Sequence[frozenset], n_partitions: int
) -> list[Sequence[frozenset]]:
    """Contiguous, near-equal chunks (the paper reads pages in order)."""
    if n_partitions < 1:
        raise InvalidParameterError("n_partitions must be >= 1")
    n = len(transactions)
    n_partitions = min(n_partitions, max(n, 1))
    chunk = math.ceil(n / n_partitions) if n else 1
    return [transactions[i : i + chunk] for i in range(0, n, chunk)]


def local_frequent_itemsets(
    chunk: Sequence[frozenset], local_min_support: int
) -> set[frozenset]:
    """Complete frequent-itemset mining of one in-memory chunk.

    Vertical tidlist recursion (the paper's partition mining is also
    tidlist-based); returns itemsets only — exact global supports come
    from phase 2.
    """
    tidlists: dict[Item, set[int]] = {}
    for tid, t in enumerate(chunk):
        for item in t:
            tidlists.setdefault(item, set()).add(tid)
    items = sorted(
        (i for i, tids in tidlists.items() if len(tids) >= local_min_support),
        key=sort_key,
    )
    out: set[frozenset] = set()

    def recurse(prefix: tuple, klass: list[tuple[Item, frozenset]]) -> None:
        for i, (item, tids) in enumerate(klass):
            itemset = prefix + (item,)
            out.add(frozenset(itemset))
            child = []
            for other, other_tids in klass[i + 1 :]:
                inter = tids & other_tids
                if len(inter) >= local_min_support:
                    child.append((other, inter))
            if child:
                recurse(itemset, child)

    recurse((), [(i, frozenset(tidlists[i])) for i in items])
    return out


def mine_partition(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    n_partitions: int = 4,
    max_len: int | None = None,
) -> dict[frozenset, int]:
    """Run Partition; returns ``{itemset -> absolute support}``."""
    db = [frozenset(t) for t in transactions]
    if not db:
        return {}
    chunks = split_database(db, n_partitions)

    # Phase 1: local mining with proportional thresholds.  ceil keeps the
    # pigeonhole guarantee: if an itemset is locally infrequent everywhere
    # (support_i < ceil(min_support * |chunk_i| / |D|) for all i, i.e.
    # support_i <= that bound - 1), summing bounds shows the global
    # support is below min_support.
    candidates: set[frozenset] = set()
    for chunk in chunks:
        local_threshold = max(1, math.ceil(min_support * len(chunk) / len(db)))
        candidates |= local_frequent_itemsets(chunk, local_threshold)

    if max_len is not None:
        candidates = {c for c in candidates if len(c) <= max_len}

    # Phase 2: one exact counting scan over the full database.
    counts = {c: 0 for c in candidates}
    by_size: dict[int, list[frozenset]] = {}
    for c in candidates:
        by_size.setdefault(len(c), []).append(c)
    for t in db:
        for size, group in by_size.items():
            if len(t) < size:
                continue
            for c in group:
                if c <= t:
                    counts[c] += 1
    return {c: n for c, n in counts.items() if n >= min_support}
