"""DIC — Dynamic Itemset Counting (Brin, Motwani, Ullman & Tsur, 1997).

The paper's reference for reducing Apriori's pass count: instead of
starting all size-``k`` candidates at pass boundaries, DIC walks the
database in blocks of ``interval`` transactions and starts counting a new
candidate the moment *all* of its immediate subsets look frequent
("suspected large").  Every candidate counts exactly one full cycle over
the database, so reported supports are exact; the win is that candidates
of many sizes count concurrently, finishing in ~(1 + overshoot) passes on
homogeneous data rather than one pass per level.

States follow the paper's metaphor: a *dashed* itemset is still counting
(circle = small so far, square = suspected large), a *solid* one has seen
the whole database (box = confirmed frequent, circle = confirmed not).
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations
from typing import Hashable

from repro.core.rank import sort_key
from repro.data.transaction_db import item_supports
from repro.errors import InvalidParameterError

__all__ = ["mine_dic"]

Item = Hashable


def mine_dic(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    interval: int = 100,
    max_len: int | None = None,
) -> dict[frozenset, int]:
    """Run DIC; returns ``{itemset -> absolute support}`` (exact)."""
    if interval < 1:
        raise InvalidParameterError("interval must be >= 1")
    db = [frozenset(t) for t in transactions]
    n = len(db)
    if n == 0:
        return {}
    supports = item_supports(db)
    frequent_items = {i for i, s in supports.items() if s >= min_support}
    # encode transactions over frequent items only (standard preprocesing;
    # an infrequent single item can never join a frequent itemset)
    encoded = [t & frequent_items for t in db]

    count: dict[frozenset, int] = {}
    remaining: dict[frozenset, int] = {}  # transactions left to see
    dashed: set[frozenset] = set()
    solid_large: dict[frozenset, int] = {}
    solid_small: set[frozenset] = set()

    def start(itemset: frozenset) -> None:
        count[itemset] = 0
        remaining[itemset] = n
        dashed.add(itemset)

    for item in frequent_items:
        start(frozenset((item,)))

    def suspected_or_confirmed_large(itemset: frozenset) -> bool:
        if itemset in solid_large:
            return True
        return itemset in dashed and count[itemset] >= min_support

    def try_extend() -> None:
        """Start any itemset whose immediate subsets all look large."""
        # grow from the currently-large sets, level-wise
        seeds = [s for s in dashed if count[s] >= min_support]
        seeds += list(solid_large)
        items_pool = sorted(
            {i for s in seeds for i in s} | set(),
            key=sort_key,
        )
        for base in list(seeds):
            if max_len is not None and len(base) >= max_len:
                continue
            for item in items_pool:
                if item in base:
                    continue
                cand = base | {item}
                if cand in count:
                    continue
                if max_len is not None and len(cand) > max_len:
                    continue
                if all(
                    suspected_or_confirmed_large(frozenset(sub))
                    for sub in combinations(cand, len(cand) - 1)
                ):
                    start(cand)

    position = 0
    processed_in_block = 0
    while dashed:
        t = encoded[position]
        position = (position + 1) % n
        processed_in_block += 1
        finished: list[frozenset] = []
        for itemset in dashed:
            if itemset <= t:
                count[itemset] += 1
            remaining[itemset] -= 1
            if remaining[itemset] == 0:
                finished.append(itemset)
        for itemset in finished:
            dashed.discard(itemset)
            if count[itemset] >= min_support:
                solid_large[itemset] = count[itemset]
            else:
                solid_small.add(itemset)
        if processed_in_block >= interval or not dashed:
            processed_in_block = 0
            try_extend()
    return dict(solid_large)
