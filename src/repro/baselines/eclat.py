"""Eclat and dEclat — vertical-layout miners (Zaki 2000; Zaki & Gouda 2003).

Eclat represents each itemset by its *tidset* (the transactions containing
it); itemset extension is tidset intersection.  dEclat stores *diffsets*
instead — the tids present in the prefix but missing from the extension —
which shrink as the recursion deepens (reference [16] of the paper).

Both walk the same prefix-based equivalence-class recursion; they differ
only in the set algebra, and the tests assert they produce identical
results.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable

from repro.core.rank import sort_key

__all__ = ["mine_eclat", "mine_declat", "vertical_layout"]

Item = Hashable


def vertical_layout(
    transactions: Iterable[Iterable[Item]], min_support: int
) -> list[tuple[Item, frozenset]]:
    """(item, tidset) pairs for frequent items, support-ascending order.

    Processing the least frequent item first keeps equivalence classes
    small — the standard Eclat ordering.
    """
    tidsets: dict[Item, set[int]] = {}
    for tid, t in enumerate(transactions):
        for item in set(t):
            tidsets.setdefault(item, set()).add(tid)
    frequent = [
        (item, frozenset(tids))
        for item, tids in tidsets.items()
        if len(tids) >= min_support
    ]
    frequent.sort(key=lambda pair: (len(pair[1]), sort_key(pair[0])))
    return frequent


def mine_eclat(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    max_len: int | None = None,
) -> dict[frozenset, int]:
    """Tidset-intersection Eclat; returns ``{itemset -> support}``."""
    items = vertical_layout(transactions, min_support)
    out: dict[frozenset, int] = {}

    def recurse(prefix: frozenset, klass: list[tuple[Item, frozenset]]) -> None:
        for i, (item, tids) in enumerate(klass):
            itemset = prefix | {item}
            out[itemset] = len(tids)
            if max_len is not None and len(itemset) >= max_len:
                continue
            child_class = []
            for other, other_tids in klass[i + 1 :]:
                inter = tids & other_tids
                if len(inter) >= min_support:
                    child_class.append((other, inter))
            if child_class:
                recurse(itemset, child_class)

    recurse(frozenset(), items)
    return out


def mine_declat(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    max_len: int | None = None,
) -> dict[frozenset, int]:
    """Diffset dEclat; identical output to :func:`mine_eclat`.

    At the top level the "diffset" of an item is its complement tidset is
    avoided by keeping plain tidsets for singletons and switching to
    diffsets from level 2, per the dEclat paper: the diffset of ``P∪{y}``
    w.r.t. prefix class member ``x`` is ``tids(x) - tids(y)`` at the switch
    and ``d(Py) - d(Px)`` thereafter; ``sup(Pxy) = sup(Px) - |d(Pxy)|``.
    """
    items = vertical_layout(transactions, min_support)
    out: dict[frozenset, int] = {}

    for i, (item, tids) in enumerate(items):
        out[frozenset((item,))] = len(tids)

    def recurse(
        prefix: frozenset,
        klass: list[tuple[Item, frozenset, int]],  # (item, diffset, support)
    ) -> None:
        for i, (item, dset, support) in enumerate(klass):
            itemset = prefix | {item}
            out[itemset] = support
            if max_len is not None and len(itemset) >= max_len:
                continue
            child_class = []
            for other, other_dset, other_support in klass[i + 1 :]:
                diff = other_dset - dset
                child_support = support - len(diff)
                if child_support >= min_support:
                    child_class.append((other, diff, child_support))
            if child_class:
                recurse(itemset, child_class)

    # level-2 switch: diffset(x, y) = tids(x) - tids(y)
    for i, (item, tids) in enumerate(items):
        if max_len is not None and max_len <= 1:
            break
        klass = []
        for other, other_tids in items[i + 1 :]:
            diff = tids - other_tids
            support = len(tids) - len(diff)
            if support >= min_support:
                klass.append((other, diff, support))
        if klass:
            recurse(frozenset((item,)), klass)
    return out
