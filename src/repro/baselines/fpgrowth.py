"""FP-growth mining over the FP-tree (Han, Pei & Yin, SIGMOD 2000).

Bottom-up pattern growth with the single-path shortcut: when a conditional
tree degenerates to one chain, all combinations of its nodes are emitted
directly with the minimum count along each combination.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations
from typing import Hashable

from repro.baselines.fptree import FPTree

__all__ = ["mine_fpgrowth", "fpgrowth_from_tree"]

Item = Hashable


def _mine(tree: FPTree, suffix: frozenset, min_support: int, out: dict, max_len: int | None) -> None:
    single = tree.single_path()
    if single is not None:
        # every combination of chain nodes extends the suffix; the support
        # is the count of the deepest (least-counted) node included
        for r in range(1, len(single) + 1):
            if max_len is not None and len(suffix) + r > max_len:
                break
            for combo in combinations(single, r):
                support = min(node.count for node in combo)
                if support >= min_support:
                    itemset = suffix | frozenset(node.item for node in combo)
                    out[itemset] = support
        return
    for item in tree.items_bottom_up():
        support = tree.item_support(item)
        if support < min_support:
            continue
        itemset = suffix | {item}
        out[itemset] = support
        if max_len is not None and len(itemset) >= max_len:
            continue
        cond = tree.conditional_tree(item)
        if not cond.is_empty():
            _mine(cond, itemset, min_support, out, max_len)


def fpgrowth_from_tree(
    tree: FPTree, min_support: int, *, max_len: int | None = None
) -> dict[frozenset, int]:
    """Mine an existing FP-tree (used by structure-size benchmarks)."""
    out: dict[frozenset, int] = {}
    if not tree.is_empty():
        _mine(tree, frozenset(), min_support, out, max_len)
    return out


def mine_fpgrowth(
    transactions: Iterable[Iterable[Item]],
    min_support: int,
    *,
    max_len: int | None = None,
) -> dict[frozenset, int]:
    """Build the FP-tree and mine it; returns ``{itemset -> support}``."""
    import sys

    tree = FPTree.from_transactions(transactions, min_support)
    needed = len(tree.header) + 100
    old = sys.getrecursionlimit()
    if needed > old:
        sys.setrecursionlimit(needed)
    try:
        return fpgrowth_from_tree(tree, min_support, max_len=max_len)
    finally:
        if needed > old:
            sys.setrecursionlimit(old)
