"""Brute-force frequent-itemset oracle.

Enumerates every subset of every transaction and counts exactly.  This is
the ground truth all other miners are tested against; it is exponential in
transaction length and must only be used on small inputs (tests guard
this).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from itertools import combinations
from typing import Hashable

from repro.errors import TopDownExplosionError

__all__ = ["mine_bruteforce", "support_counts_bruteforce"]

#: Safety ceiling on enumerated subsets (the oracle is for tests).
_MAX_SUBSETS = 5_000_000


def support_counts_bruteforce(
    transactions: Iterable[Iterable[Hashable]],
) -> Counter:
    """Exact support of every non-empty itemset occurring in the data."""
    counts: Counter = Counter()
    budget = _MAX_SUBSETS
    for t in transactions:
        items = tuple(sorted(set(t), key=lambda x: (type(x).__name__, repr(x))))
        n = len(items)
        budget -= (1 << n) - 1
        if budget < 0:
            raise TopDownExplosionError(
                "brute-force oracle exceeded its subset budget; use it on "
                "small databases only"
            )
        for r in range(1, n + 1):
            for combo in combinations(items, r):
                counts[frozenset(combo)] += 1
    return counts


def mine_bruteforce(
    transactions: Iterable[Iterable[Hashable]],
    min_support: int,
    *,
    max_len: int | None = None,
) -> dict[frozenset, int]:
    """All itemsets with support >= ``min_support`` (absolute count)."""
    counts = support_counts_bruteforce(transactions)
    return {
        itemset: sup
        for itemset, sup in counts.items()
        if sup >= min_support and (max_len is None or len(itemset) <= max_len)
    }
