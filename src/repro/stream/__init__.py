"""Bounded-memory streaming sketch tier.

One-pass, fixed-memory frequency summaries over transaction streams:

* :class:`~repro.stream.cms.CountMinSketch` — conservative-update
  count-min point estimates with a one-sided (eps, delta) guarantee;
* :class:`~repro.stream.spacesaving.SpaceSaving` — enumerable
  heavy-hitter candidates with per-key error bounds;
* :class:`~repro.stream.summary.StreamSummary` — the composed summary
  over PLT ranks and rank pairs, answering frequency / top-k / frequent
  1-2-itemset queries as labeled ``ApproximateResult``\\ s;
* :class:`~repro.stream.window.SlidingWindowSketch` — generational
  sliding-window variant that tracks drift, optionally composed with an
  exact :class:`~repro.core.window.SlidingWindowPLT` tail;
* :class:`~repro.stream.ingest.StreamIngestor` + snapshot helpers —
  the driver that feeds a stream in and persists/restores through
  CRC-framed :class:`~repro.robustness.checkpoint.CheckpointStore`
  generations.

See ``docs/STREAMING.md`` for guarantees and the memory model.
"""

from repro.stream.cms import CountMinSketch, pack_pair, unpack_pair
from repro.stream.ingest import (
    SKETCH_KEY,
    SKETCH_NODE,
    StreamIngestor,
    load_sketch,
    save_sketch,
    sketch_digest,
    sketch_from_blob,
    sketch_to_blob,
)
from repro.stream.spacesaving import SpaceSaving
from repro.stream.summary import RankRegistry, StreamSummary
from repro.stream.window import SlidingWindowSketch

__all__ = [
    "CountMinSketch",
    "SpaceSaving",
    "RankRegistry",
    "StreamSummary",
    "SlidingWindowSketch",
    "StreamIngestor",
    "save_sketch",
    "load_sketch",
    "sketch_digest",
    "sketch_to_blob",
    "sketch_from_blob",
    "SKETCH_NODE",
    "SKETCH_KEY",
    "pack_pair",
    "unpack_pair",
]
