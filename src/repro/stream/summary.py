"""One-pass bounded-memory stream summary over PLT ranks.

:class:`StreamSummary` is the streaming counterpart of building a PLT:
it ingests transactions exactly once, holds **fixed** memory regardless
of stream length, and answers the queries the serving tier needs —

* item / 2-itemset frequency, via conservative-update count-min
  sketches (:mod:`repro.stream.cms`) keyed by PLT ranks and rank pairs;
* top-k and "which itemsets are frequent", via space-saving summaries
  (:mod:`repro.stream.spacesaving`) over the same rank keys, so the
  candidates stay *enumerable* (a CMS alone can only answer points);
* longer itemsets, by the subset upper bound: every superset's support
  is at most the minimum over its items' and rank-pairs' estimates, so
  the answer is still one-sided (never under-reports).

Ranks are assigned in arrival order by a shared :class:`RankRegistry`
(the same device :class:`~repro.core.incremental.IncrementalPLT` uses:
existing ranks never shift as new items appear), and rank *pairs* are
keyed low-to-high — the canonical increasing rank-path order of the
PLT.  The registry grows with the number of **distinct items**, not
with stream length; for itemset streams that is the fixed dimension of
the problem, and it is the only unbounded-in-theory state the summary
holds.

Every public answer is an explicitly labeled
:class:`~repro.core.mining.ApproximateResult` carrying its error bound
in ``info`` — a sketch answer can never be mistaken for an exact one.
"""

from __future__ import annotations

import hashlib
import json
import struct
from collections.abc import Hashable, Iterable

from repro.core.mining import ApproximateResult, FrequentItemset
from repro.core.rank import sort_key
from repro.data.transaction_db import resolve_min_support
from repro.errors import CheckpointError, InvalidParameterError
from repro.stream.cms import CountMinSketch, pack_pair
from repro.stream.spacesaving import SpaceSaving

__all__ = ["RankRegistry", "StreamSummary"]

Item = Hashable

#: Serialization section prefix: 4-byte little-endian length per section.
_SECTION = struct.Struct("<I")
_MAGIC = b"STRS"


def _pack_sections(*sections: bytes) -> bytes:
    return _MAGIC + b"".join(_SECTION.pack(len(s)) + s for s in sections)


def _unpack_sections(blob: bytes, n: int) -> list[bytes]:
    if blob[:4] != _MAGIC:
        raise CheckpointError("not a serialized stream summary")
    out: list[bytes] = []
    pos = 4
    for _ in range(n):
        if pos + _SECTION.size > len(blob):
            raise CheckpointError("truncated stream summary blob")
        (length,) = _SECTION.unpack_from(blob, pos)
        pos += _SECTION.size
        if pos + length > len(blob):
            raise CheckpointError("truncated stream summary blob")
        out.append(blob[pos : pos + length])
        pos += length
    if pos != len(blob):
        raise CheckpointError("trailing bytes after stream summary sections")
    return out


class RankRegistry:
    """Arrival-order ``item <-> rank`` table shared by stream sketches.

    Mirrors the unfiltered rank assignment of
    :class:`~repro.core.incremental.IncrementalPLT`: the first distinct
    item ever seen gets rank 1, and ranks never shift afterwards, so
    sketch keys stay stable as the stream evolves.
    """

    __slots__ = ("_item_to_rank", "_items")

    def __init__(self) -> None:
        self._item_to_rank: dict[Item, int] = {}
        self._items: list[Item] = []

    def rank_for(self, item: Item, *, create: bool = True) -> int | None:
        rank = self._item_to_rank.get(item)
        if rank is None and create:
            self._items.append(item)
            rank = len(self._items)
            self._item_to_rank[item] = rank
        return rank

    def item(self, rank: int) -> Item:
        return self._items[rank - 1]

    def items(self) -> tuple[Item, ...]:
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._item_to_rank

    def to_bytes(self) -> bytes:
        """JSON-serialize the arrival-order item list.

        Item labels must be JSON scalars (the ``int``/``str`` labels the
        ``.dat``/CSV readers produce); richer labels are a modelling
        error for a *persistable* stream tier and raise.
        """
        for item in self._items:
            if not isinstance(item, (int, str)):
                raise CheckpointError(
                    f"stream snapshots support int/str item labels, got "
                    f"{type(item).__name__}: {item!r}"
                )
        return json.dumps(self._items, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RankRegistry":
        try:
            items = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"damaged rank registry: {exc}") from exc
        registry = cls()
        for item in items:
            registry.rank_for(item)
        return registry

    def __repr__(self) -> str:
        return f"RankRegistry({len(self._items)} items)"


class StreamSummary:
    """Fixed-memory itemset-frequency summary of everything pushed so far.

    Parameters
    ----------
    epsilon, delta:
        The count-min guarantee: estimates overshoot true counts by at
        most ``eps * N`` with probability ``>= 1 - delta`` (and never
        undershoot), where ``N`` is the sketch's own update total.
    capacity:
        Space-saving slots per heavy-hitter summary; any key occurring
        more than ``updates / capacity`` times stays enumerable.
    track_pairs:
        Maintain the rank-pair sketch/summary (2-itemset queries).  Off,
        only single-item queries (and the trivial upper bound ``min`` of
        member estimates) are available.
    registry:
        A shared :class:`RankRegistry` (the sliding-window composition
        passes one so all its generations agree on ranks).
    """

    __slots__ = (
        "epsilon",
        "delta",
        "capacity",
        "seed",
        "track_pairs",
        "registry",
        "items_cms",
        "pairs_cms",
        "items_hh",
        "pairs_hh",
        "n_transactions",
    )

    def __init__(
        self,
        *,
        epsilon: float = 0.005,
        delta: float = 0.01,
        capacity: int = 256,
        seed: int = 0,
        track_pairs: bool = True,
        registry: RankRegistry | None = None,
    ):
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.track_pairs = bool(track_pairs)
        self.registry = registry if registry is not None else RankRegistry()
        self.items_cms = CountMinSketch(epsilon, delta, seed=seed)
        self.items_hh = SpaceSaving(capacity)
        if track_pairs:
            self.pairs_cms = CountMinSketch(epsilon, delta, seed=seed + 1)
            self.pairs_hh = SpaceSaving(capacity)
        else:
            self.pairs_cms = None
            self.pairs_hh = None
        self.n_transactions = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def push(self, transaction: Iterable[Item]) -> None:
        """Ingest one transaction (single pass, no buffering)."""
        ranks = sorted({self.registry.rank_for(item) for item in transaction})
        self.n_transactions += 1
        for r in ranks:
            self.items_cms.add(r)
            self.items_hh.add(r)
        if self.track_pairs and len(ranks) > 1:
            for i, r1 in enumerate(ranks):
                for r2 in ranks[i + 1 :]:
                    self.pairs_cms.add(pack_pair(r1, r2))
                    self.pairs_hh.add((r1, r2))

    def extend(self, transactions: Iterable[Iterable[Item]]) -> int:
        count = 0
        for t in transactions:
            self.push(t)
            count += 1
        return count

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    def _ranks_of(self, itemset: Iterable[Item]) -> list[int] | None:
        """Sorted ranks of the itemset, or ``None`` if any item is unseen."""
        ranks = []
        for item in set(itemset):
            rank = self.registry.rank_for(item, create=False)
            if rank is None:
                return None
            ranks.append(rank)
        if not ranks:
            raise InvalidParameterError("cannot estimate an empty itemset")
        return sorted(ranks)

    def estimate(self, itemset: Iterable[Item]) -> int:
        """One-sided support estimate: ``>= true support``, ``<= true +
        error_bound()`` w.h.p. for 1-/2-itemsets.

        Unseen items have true support 0 and estimate 0.  Itemsets of
        three or more items are answered by the subset upper bound (the
        minimum estimate over member items and tracked pairs) — still
        never an under-report, but looser than the pair bound.
        """
        ranks = self._ranks_of(itemset)
        if ranks is None:
            return 0
        if len(ranks) == 1:
            return self.items_cms.estimate(ranks[0])
        if self.track_pairs:
            pair_min = min(
                self.pairs_cms.estimate(pack_pair(r1, r2))
                for i, r1 in enumerate(ranks)
                for r2 in ranks[i + 1 :]
            )
            return pair_min
        return min(self.items_cms.estimate(r) for r in ranks)

    def error_bound(self, size: int = 1) -> int:
        """Additive bound on the overestimate for a ``size``-itemset query."""
        if size <= 1 or not self.track_pairs:
            return self.items_cms.error_bound()
        return self.pairs_cms.error_bound()

    # ------------------------------------------------------------------
    # labeled answers
    # ------------------------------------------------------------------
    def _disclaimer(self, detail: str) -> str:
        return (
            f"approximate result: supports are conservative-update count-min "
            f"estimates (never below the true support, above it by at most "
            f"eps*N with probability >= {1.0 - self.delta:g}); {detail}"
        )

    def _info(self, **extra) -> dict:
        info = {
            "fallback": "sketch",
            "epsilon": self.epsilon,
            "delta": self.delta,
            "error_bound": self.error_bound(1),
            "pair_error_bound": self.error_bound(2) if self.track_pairs else None,
            "memory_bytes": self.memory_bytes(),
        }
        info.update(extra)
        return info

    def frequency(
        self, itemset: Iterable[Item], min_support: float | int | None = None
    ) -> ApproximateResult:
        """The support estimate of one itemset, as a labeled result.

        The result holds one :class:`~repro.core.mining.FrequentItemset`
        (or none, when a threshold is given and the estimate misses it);
        ``info["estimate"]`` always carries the raw number.
        """
        items = tuple(sorted(set(itemset), key=sort_key))
        est = self.estimate(items)
        threshold = (
            resolve_min_support(min_support, max(self.n_transactions, 1))
            if min_support is not None
            else 1
        )
        itemsets = [FrequentItemset(items, est)] if est >= threshold else []
        bound = self.error_bound(len(items))
        return ApproximateResult(
            itemsets,
            n_transactions=self.n_transactions,
            min_support=threshold,
            method="stream-sketch",
            disclaimer=self._disclaimer(
                f"point query over a {len(items)}-itemset, bound +{bound}"
            ),
            info=self._info(estimate=est, query=list(items), size=len(items)),
        )

    def _candidate_rows(self) -> list[tuple[tuple[Item, ...], int, int]]:
        """Every monitored candidate as ``(items, estimate, guaranteed)``.

        Estimates come from the CMS (tighter than the space-saving count);
        ``guaranteed`` is the space-saving lower bound ``count - error``.
        """
        rows: list[tuple[tuple[Item, ...], int, int]] = []
        for rank, count, error in self.items_hh.entries():
            items = (self.registry.item(rank),)
            rows.append((items, self.items_cms.estimate(rank), count - error))
        if self.track_pairs:
            for (r1, r2), count, error in self.pairs_hh.entries():
                items = tuple(
                    sorted(
                        (self.registry.item(r1), self.registry.item(r2)),
                        key=sort_key,
                    )
                )
                rows.append(
                    (items, self.pairs_cms.estimate(pack_pair(r1, r2)), count - error)
                )
        return rows

    def top_k(self, k: int) -> ApproximateResult:
        """The ``k`` heaviest monitored itemsets (singles and pairs)."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        rows = self._candidate_rows()
        rows.sort(key=lambda row: (-row[1], len(row[0]), [sort_key(i) for i in row[0]]))
        top = rows[:k]
        return ApproximateResult(
            [FrequentItemset(items, est) for items, est, _guaranteed in top],
            n_transactions=self.n_transactions,
            min_support=1,
            method="stream-sketch+topk",
            disclaimer=self._disclaimer(
                f"top-{k} of the {len(rows)} monitored heavy-hitter candidates; "
                "itemsets below the space-saving floor are not enumerable"
            ),
            info=self._info(k=k, candidates=len(rows)),
        )

    def as_result(
        self, min_support: float | int, *, method: str = "stream-sketch"
    ) -> ApproximateResult:
        """Every monitored 1-/2-itemset whose estimate meets the threshold.

        The enumerable universe is bounded by the space-saving capacity:
        itemsets rarer than ``updates / capacity`` may be missing even if
        they squeak past the threshold — the disclaimer says so.
        """
        threshold = resolve_min_support(min_support, max(self.n_transactions, 1))
        keep = [
            FrequentItemset(items, est)
            for items, est, _guaranteed in self._candidate_rows()
            if est >= threshold
        ]
        return ApproximateResult(
            keep,
            n_transactions=self.n_transactions,
            min_support=threshold,
            method=method,
            disclaimer=self._disclaimer(
                "only monitored 1- and 2-itemsets are enumerated; longer "
                "itemsets and candidates below the space-saving floor are "
                "not in the answer"
            ),
            info=self._info(min_support=threshold),
        )

    # ------------------------------------------------------------------
    # accounting / persistence
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Fixed sketch state plus the (distinct-item-bounded) summaries."""
        total = self.items_cms.memory_bytes() + self.items_hh.memory_bytes()
        if self.track_pairs:
            total += self.pairs_cms.memory_bytes() + self.pairs_hh.memory_bytes()
        return total

    def _hh_bytes(self, hh: SpaceSaving) -> bytes:
        rows = [[list(k) if isinstance(k, tuple) else k, c, e] for k, c, e in hh.entries()]
        doc = {"capacity": hh.capacity, "total": hh.total, "rows": rows}
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def _hh_from_bytes(blob: bytes) -> SpaceSaving:
        try:
            doc = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"damaged heavy-hitter section: {exc}") from exc
        hh = SpaceSaving(doc["capacity"])
        for key, count, error in doc["rows"]:
            if isinstance(key, list):
                key = tuple(key)
            hh._counts[key] = count
            hh._errors[key] = error
        hh.total = doc["total"]
        hh._rebuild_heap()
        return hh

    def to_bytes(self) -> bytes:
        """Serialize the complete summary state (restores byte-identically)."""
        header = json.dumps(
            {
                "epsilon": self.epsilon,
                "delta": self.delta,
                "capacity": self.capacity,
                "seed": self.seed,
                "track_pairs": self.track_pairs,
                "n_transactions": self.n_transactions,
            },
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        sections = [
            header,
            self.registry.to_bytes(),
            self.items_cms.to_bytes(),
            self._hh_bytes(self.items_hh),
        ]
        if self.track_pairs:
            sections.append(self.pairs_cms.to_bytes())
            sections.append(self._hh_bytes(self.pairs_hh))
        return _pack_sections(*sections)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "StreamSummary":
        # parse the header first to learn how many sections follow
        if len(blob) < 8 or blob[:4] != _MAGIC:
            raise CheckpointError("not a serialized stream summary")
        (header_len,) = _SECTION.unpack_from(blob, 4)
        try:
            header = json.loads(blob[8 : 8 + header_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"damaged stream summary header: {exc}") from exc
        track_pairs = bool(header["track_pairs"])
        sections = _unpack_sections(blob, 6 if track_pairs else 4)
        summary = cls(
            epsilon=header["epsilon"],
            delta=header["delta"],
            capacity=header["capacity"],
            seed=header["seed"],
            track_pairs=track_pairs,
            registry=RankRegistry.from_bytes(sections[1]),
        )
        summary.n_transactions = header["n_transactions"]
        summary.items_cms = CountMinSketch.from_bytes(sections[2])
        summary.items_hh = cls._hh_from_bytes(sections[3])
        if track_pairs:
            summary.pairs_cms = CountMinSketch.from_bytes(sections[4])
            summary.pairs_hh = cls._hh_from_bytes(sections[5])
        return summary

    def state_digest(self) -> str:
        """SHA-256 of the serialized state — the snapshot identity check."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def __repr__(self) -> str:
        return (
            f"StreamSummary(eps={self.epsilon}, delta={self.delta}, "
            f"capacity={self.capacity}, transactions={self.n_transactions}, "
            f"items={len(self.registry)}, ~{self.memory_bytes()} bytes)"
        )
