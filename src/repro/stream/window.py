"""Sliding-window composition of stream summaries: sketching with decay.

A single :class:`~repro.stream.summary.StreamSummary` remembers the
whole stream — after a distribution change it keeps reporting patterns
that stopped occurring.  :class:`SlidingWindowSketch` bounds the
horizon: the last ``window`` transactions are covered by a deque of
``buckets`` generation summaries (each spanning ``~window/buckets``
transactions) that share one :class:`~repro.stream.summary.RankRegistry`
so ranks agree across generations.  When the newest generation fills,
a fresh one starts; when total coverage exceeds the window, the oldest
generation is dropped whole.

Estimates are the **sum of per-generation estimates**.  Each generation
is itself conservative (never under its own true count), so the sum
never under-reports the true support over the covered suffix, and the
additive error bound is the sum of the generations' bounds.  Coverage
is generation-granular: between ``window - window/buckets`` and
``window`` transactions (exactly like time-decayed sketches traded
against memory); ``covered()`` reports the current figure and every
answer's ``info`` carries it.

For callers that need *exact* answers over a short recent horizon, the
optional ``exact_tail`` composes a
:class:`~repro.core.window.SlidingWindowPLT` maintained in lockstep:
``mine_exact_tail()`` mines the last ``exact_tail`` transactions
exactly while the sketch covers the long window approximately.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Hashable, Iterable

from repro.core.mining import ApproximateResult, FrequentItemset
from repro.core.rank import sort_key
from repro.core.window import SlidingWindowPLT
from repro.data.transaction_db import resolve_min_support
from repro.errors import InvalidParameterError
from repro.stream.cms import pack_pair
from repro.stream.summary import RankRegistry, StreamSummary

__all__ = ["SlidingWindowSketch"]

Item = Hashable


class SlidingWindowSketch:
    """Fixed-memory frequency summary of (approximately) the last ``window``
    transactions.

    Parameters mirror :class:`~repro.stream.summary.StreamSummary`, plus:

    window:
        Target number of recent transactions covered.
    buckets:
        Generations the window is split into; more buckets means finer
        eviction granularity at ``buckets``× the sketch memory.
    exact_tail:
        When positive, also maintain an exact
        :class:`~repro.core.window.SlidingWindowPLT` over the most
        recent ``exact_tail`` transactions (must be ``<= window``).
    """

    __slots__ = (
        "window",
        "buckets",
        "bucket_span",
        "epsilon",
        "delta",
        "capacity",
        "seed",
        "track_pairs",
        "registry",
        "_generations",
        "_pushed",
        "_gen_counter",
        "exact_tail",
        "_tail",
    )

    def __init__(
        self,
        window: int,
        *,
        buckets: int = 4,
        epsilon: float = 0.005,
        delta: float = 0.01,
        capacity: int = 256,
        seed: int = 0,
        track_pairs: bool = True,
        exact_tail: int = 0,
    ):
        if window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {window}")
        if buckets < 1:
            raise InvalidParameterError(f"buckets must be >= 1, got {buckets}")
        if exact_tail < 0 or exact_tail > window:
            raise InvalidParameterError(
                f"exact_tail must be in [0, window], got {exact_tail}"
            )
        self.window = int(window)
        self.buckets = int(buckets)
        self.bucket_span = max(1, math.ceil(window / buckets))
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.track_pairs = bool(track_pairs)
        self.registry = RankRegistry()
        self._generations: deque[StreamSummary] = deque()
        self._pushed = 0
        self._gen_counter = 0
        self.exact_tail = int(exact_tail)
        self._tail = SlidingWindowPLT(exact_tail) if exact_tail else None

    # ------------------------------------------------------------------
    def _new_generation(self) -> StreamSummary:
        # distinct seeds per generation keep hash collisions uncorrelated
        self._gen_counter += 1
        gen = StreamSummary(
            epsilon=self.epsilon,
            delta=self.delta,
            capacity=self.capacity,
            seed=self.seed + 2 * self._gen_counter,
            track_pairs=self.track_pairs,
            registry=self.registry,
        )
        self._generations.append(gen)
        return gen

    def push(self, transaction: Iterable[Item]) -> None:
        """Ingest one transaction; evicts an old generation when due."""
        t = tuple(transaction) if not isinstance(transaction, (tuple, frozenset)) else transaction
        if not self._generations or self._generations[-1].n_transactions >= self.bucket_span:
            self._new_generation()
        self._generations[-1].push(t)
        self._pushed += 1
        while self.covered() > self.window and len(self._generations) > 1:
            self._generations.popleft()
        if self._tail is not None:
            self._tail.push(t)

    def extend(self, transactions: Iterable[Iterable[Item]]) -> int:
        count = 0
        for t in transactions:
            self.push(t)
            count += 1
        return count

    # ------------------------------------------------------------------
    def covered(self) -> int:
        """Transactions currently covered by the live generations."""
        return sum(g.n_transactions for g in self._generations)

    @property
    def n_seen(self) -> int:
        """Total transactions ever pushed (including evicted ones)."""
        return self._pushed

    def estimate(self, itemset: Iterable[Item]) -> int:
        """Summed per-generation estimates — never under the true support
        over the covered suffix."""
        items = tuple(set(itemset))
        if not items:
            raise InvalidParameterError("cannot estimate an empty itemset")
        return sum(g.estimate(items) for g in self._generations)

    def error_bound(self, size: int = 1) -> int:
        """Sum of the generations' additive bounds for a ``size``-itemset."""
        return sum(g.error_bound(size) for g in self._generations)

    def memory_bytes(self) -> int:
        return sum(g.memory_bytes() for g in self._generations)

    # ------------------------------------------------------------------
    def _disclaimer(self, detail: str) -> str:
        return (
            f"approximate result over a sliding window: covers the last "
            f"{self.covered()} of {self._pushed} transactions in "
            f"{len(self._generations)} generations; per-generation "
            f"conservative count-min estimates are summed (never below the "
            f"true windowed support); {detail}"
        )

    def _info(self, **extra) -> dict:
        info = {
            "fallback": "sketch-window",
            "epsilon": self.epsilon,
            "delta": self.delta,
            "window": self.window,
            "covered": self.covered(),
            "generations": len(self._generations),
            "n_seen": self._pushed,
            "error_bound": self.error_bound(1),
            "pair_error_bound": self.error_bound(2) if self.track_pairs else None,
            "memory_bytes": self.memory_bytes(),
        }
        info.update(extra)
        return info

    def frequency(
        self, itemset: Iterable[Item], min_support: float | int | None = None
    ) -> ApproximateResult:
        """Windowed support estimate of one itemset, as a labeled result."""
        items = tuple(sorted(set(itemset), key=sort_key))
        est = self.estimate(items)
        covered = max(self.covered(), 1)
        threshold = (
            resolve_min_support(min_support, covered) if min_support is not None else 1
        )
        itemsets = [FrequentItemset(items, est)] if est >= threshold else []
        return ApproximateResult(
            itemsets,
            n_transactions=self.covered(),
            min_support=threshold,
            method="stream-sketch-window",
            disclaimer=self._disclaimer(
                f"point query over a {len(items)}-itemset, bound "
                f"+{self.error_bound(len(items))}"
            ),
            info=self._info(estimate=est, query=list(items), size=len(items)),
        )

    def _candidate_rows(self) -> list[tuple[tuple[Item, ...], int]]:
        """Union of monitored candidates across generations, re-estimated
        with the summed sketches so every row uses the same estimator."""
        single_ranks: set[int] = set()
        pair_ranks: set[tuple[int, int]] = set()
        for g in self._generations:
            for rank, _count, _error in g.items_hh.entries():
                single_ranks.add(rank)
            if self.track_pairs:
                for pair, _count, _error in g.pairs_hh.entries():
                    pair_ranks.add(pair)
        rows: list[tuple[tuple[Item, ...], int]] = []
        for rank in single_ranks:
            est = sum(g.items_cms.estimate(rank) for g in self._generations)
            rows.append(((self.registry.item(rank),), est))
        for r1, r2 in pair_ranks:
            key = pack_pair(r1, r2)
            est = sum(g.pairs_cms.estimate(key) for g in self._generations)
            items = tuple(
                sorted((self.registry.item(r1), self.registry.item(r2)), key=sort_key)
            )
            rows.append((items, est))
        return rows

    def top_k(self, k: int) -> ApproximateResult:
        """The ``k`` heaviest monitored itemsets over the covered window."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        rows = self._candidate_rows()
        rows.sort(key=lambda row: (-row[1], len(row[0]), [sort_key(i) for i in row[0]]))
        top = rows[:k]
        return ApproximateResult(
            [FrequentItemset(items, est) for items, est in top],
            n_transactions=self.covered(),
            min_support=1,
            method="stream-sketch-window+topk",
            disclaimer=self._disclaimer(
                f"top-{k} of {len(rows)} candidates monitored across generations"
            ),
            info=self._info(k=k, candidates=len(rows)),
        )

    def as_result(
        self, min_support: float | int, *, method: str = "stream-sketch-window"
    ) -> ApproximateResult:
        """Monitored 1-/2-itemsets meeting the threshold over the window."""
        threshold = resolve_min_support(min_support, max(self.covered(), 1))
        keep = [
            FrequentItemset(items, est)
            for items, est in self._candidate_rows()
            if est >= threshold
        ]
        keep.sort(
            key=lambda fi: (len(fi.items), [sort_key(i) for i in fi.items])
        )
        return ApproximateResult(
            keep,
            n_transactions=self.covered(),
            min_support=threshold,
            method=method,
            disclaimer=self._disclaimer(
                "only monitored 1- and 2-itemsets are enumerated"
            ),
            info=self._info(min_support=threshold),
        )

    # ------------------------------------------------------------------
    def mine_exact_tail(
        self, min_support: float | int, *, max_len: int | None = None
    ) -> list[tuple[tuple[Item, ...], int]]:
        """Exact frequent itemsets of the last ``exact_tail`` transactions.

        Requires the sketch to have been built with ``exact_tail > 0``.
        """
        if self._tail is None:
            raise InvalidParameterError(
                "exact-tail mining requires exact_tail > 0 at construction"
            )
        return self._tail.mine(min_support, max_len=max_len)

    def __repr__(self) -> str:
        return (
            f"SlidingWindowSketch(window={self.window}, buckets={self.buckets}, "
            f"covered={self.covered()}/{self._pushed} pushed, "
            f"~{self.memory_bytes()} bytes)"
        )
