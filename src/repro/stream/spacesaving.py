"""Space-saving heavy-hitters summary (Metwally, Agrawal & El Abbadi).

A count-min sketch answers *point* queries but cannot enumerate — "which
itemsets are frequent?" needs the candidates held somewhere.  The
space-saving summary keeps exactly ``capacity`` monitored keys; when a
new key arrives with the summary full, the current minimum-count entry
is *evicted and overwritten*: the newcomer inherits ``min_count + 1``
with its error recorded as ``min_count``.  Invariants (for ``N`` total
counted occurrences and ``m = capacity``):

* ``count(x) >= true(x)``            — monitored counts never under-report;
* ``count(x) - error(x) <= true(x)`` — the guaranteed-count lower bound;
* any key with ``true(x) > N / m`` is guaranteed to be monitored, so
  every true heavy hitter above that rate is enumerable.

Keys here are PLT ranks (``int``) or rank paths (tuples of increasing
ranks) — homogeneous and totally ordered per summary, which keeps the
report order deterministic.

The minimum is tracked with a lazy heap: increments push superseded
entries that are skipped on pop, and the heap is rebuilt whenever the
stale fraction grows past ``4x`` capacity, so ``add`` stays amortized
O(log m) without a linear min-scan per eviction.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable

from repro.errors import InvalidParameterError

__all__ = ["SpaceSaving"]


class SpaceSaving:
    """Bounded summary of the heaviest keys with per-key error bounds.

    >>> ss = SpaceSaving(capacity=2)
    >>> for key in (1, 1, 1, 2, 3):
    ...     ss.add(key)
    >>> count, error = ss.estimate(1)
    >>> count
    3
    >>> len(ss) <= 2
    True
    """

    __slots__ = ("capacity", "total", "_counts", "_errors", "_heap", "_stale")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.total = 0
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}
        self._heap: list[tuple[int, Hashable]] = []  # lazy (count, key) min-heap
        self._stale = 0

    # ------------------------------------------------------------------
    def add(self, key: Hashable, count: int = 1) -> None:
        """Record ``count`` occurrences of ``key``."""
        if count < 1:
            raise InvalidParameterError(f"count must be >= 1, got {count}")
        self.total += count
        counts = self._counts
        current = counts.get(key)
        if current is not None:
            counts[key] = current + count
            heapq.heappush(self._heap, (current + count, key))
            self._stale += 1
        elif len(counts) < self.capacity:
            counts[key] = count
            self._errors[key] = 0
            heapq.heappush(self._heap, (count, key))
        else:
            victim_count, victim = self._pop_min()
            del counts[victim]
            del self._errors[victim]
            counts[key] = victim_count + count
            self._errors[key] = victim_count
            heapq.heappush(self._heap, (victim_count + count, key))
        if self._stale > 4 * self.capacity:
            self._rebuild_heap()

    def _pop_min(self) -> tuple[int, Hashable]:
        """Pop the true current minimum, skipping superseded heap entries."""
        counts = self._counts
        heap = self._heap
        while heap:
            count, key = heapq.heappop(heap)
            if counts.get(key) == count:
                return count, key
            self._stale -= 1
        # unreachable while invariants hold: every live entry is on the heap
        raise AssertionError("space-saving heap lost a live entry")

    def _rebuild_heap(self) -> None:
        self._heap = [(count, key) for key, count in self._counts.items()]
        heapq.heapify(self._heap)
        self._stale = 0

    # ------------------------------------------------------------------
    def estimate(self, key: Hashable) -> tuple[int, int] | None:
        """``(count, error)`` for a monitored key, else ``None``.

        ``count`` over-reports by at most ``error``; ``count - error`` is a
        guaranteed lower bound on the true frequency.  ``None`` means the
        key's true count is at most the summary's current minimum count.
        """
        count = self._counts.get(key)
        if count is None:
            return None
        return count, self._errors[key]

    def min_count(self) -> int:
        """The smallest monitored count — an upper bound on any absent key."""
        if not self._counts:
            return 0
        if len(self._counts) < self.capacity:
            return 0
        count, key = self._pop_min()
        heapq.heappush(self._heap, (count, key))
        return count

    def entries(self) -> list[tuple[Hashable, int, int]]:
        """``(key, count, error)`` rows, heaviest first, deterministic order.

        Ties break on smaller error (tighter bound first), then on the key
        itself — keys within one summary are homogeneous and comparable.
        """
        rows = [
            (key, count, self._errors[key]) for key, count in self._counts.items()
        ]
        rows.sort(key=lambda row: (-row[1], row[2], row[0]))
        return rows

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._counts

    def memory_bytes(self) -> int:
        """Rough resident estimate: two dict slots + heap entry per key."""
        return len(self._counts) * 120 + len(self._heap) * 40

    def __repr__(self) -> str:
        return (
            f"SpaceSaving(capacity={self.capacity}, monitored={len(self._counts)}, "
            f"total={self.total})"
        )
