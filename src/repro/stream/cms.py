"""Conservative-update count-min sketch over integer keys.

The exact miners answer frequency queries by holding the database (or
its PLT/FlatPLT lowering).  A count-min sketch answers the same *point*
queries from ``width x depth`` fixed counters: hash the key into one
cell per row, return the minimum.  Collisions only ever *add* counts,
so the estimate is one-sided::

    true_count(x)  <=  estimate(x)  <=  true_count(x) + eps * N

where ``N`` is the total count inserted (the stream's L1 norm), the
``<=`` on the right holds with probability ``>= 1 - delta``, and

    width = ceil(e / eps),    depth = ceil(ln(1 / delta)).

This is the upper-bound construction matching the lower bound in
Price's *Optimal Lower Bound for Itemset Frequency Indicator Sketches*
(PAPERS.md): ~``1/eps`` counters per row is also what any sketch
answering these indicator queries fundamentally needs.

**Conservative update** (Estan & Varghese) keeps the one-sided
guarantee but only raises the cells that *must* rise: on ``add(x, c)``
every cell of ``x`` becomes ``max(cell, estimate(x) + c)`` instead of
``cell + c``.  Rows stop inheriting counts from keys they merely share
a cell with, which in practice shrinks the overestimate by an order of
magnitude on skewed streams — and never breaks ``estimate >= true``.

Keys are **integers** (PLT ranks, or packed rank pairs — see
:func:`pack_pair`).  Hashing uses a seeded 2-universal family
``((a*x + b) mod p) mod width`` over the Mersenne prime ``2^61 - 1``,
so a sketch is deterministic given ``(seed, stream)`` regardless of
``PYTHONHASHSEED`` — snapshots restore byte-identically.
"""

from __future__ import annotations

import math
import struct
import sys
from array import array
from random import Random

from repro.errors import CheckpointError, InvalidParameterError

__all__ = ["CountMinSketch", "pack_pair", "unpack_pair"]

#: Mersenne prime for the 2-universal hash family.
_PRIME = (1 << 61) - 1

#: Serialization header: epsilon, delta, seed, width, depth, total,
#: conservative flag (magic guards against feeding foreign blobs in).
_HEADER = struct.Struct("<4sddqIIQB")
_MAGIC = b"CMS1"

#: Rank pairs are packed into one integer key; ranks are 1-based and a
#: rank table of 2**31 items is far beyond anything the repo builds.
_PAIR_SHIFT = 32


def pack_pair(r1: int, r2: int) -> int:
    """One integer key for the unordered rank pair ``{r1, r2}``.

    The pair is normalised ``low -> high`` first, matching the PLT's
    canonical rank-path order (paths are strictly increasing).
    """
    if r1 > r2:
        r1, r2 = r2, r1
    return (r1 << _PAIR_SHIFT) | r2


def unpack_pair(key: int) -> tuple[int, int]:
    """Inverse of :func:`pack_pair`."""
    return key >> _PAIR_SHIFT, key & ((1 << _PAIR_SHIFT) - 1)


class CountMinSketch:
    """Fixed-memory frequency counters with a one-sided (eps, delta) bound.

    >>> cms = CountMinSketch(epsilon=0.01, delta=0.01, seed=7)
    >>> for rank in (1, 2, 1, 3, 1):
    ...     cms.add(rank)
    >>> cms.estimate(1) >= 3  # never under-reports
    True
    >>> cms.estimate(99)  # unseen keys can only over-report
    0
    """

    __slots__ = (
        "epsilon",
        "delta",
        "seed",
        "width",
        "depth",
        "conservative",
        "total",
        "_cells",
        "_a",
        "_b",
    )

    def __init__(
        self,
        epsilon: float = 0.005,
        delta: float = 0.01,
        *,
        seed: int = 0,
        conservative: bool = True,
    ):
        if not 0.0 < epsilon < 1.0:
            raise InvalidParameterError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0.0 < delta < 1.0:
            raise InvalidParameterError(f"delta must be in (0, 1), got {delta}")
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self.seed = int(seed)
        self.width = math.ceil(math.e / epsilon)
        self.depth = math.ceil(math.log(1.0 / delta))
        self.conservative = bool(conservative)
        self.total = 0
        self._cells = array("Q", bytes(8 * self.width * self.depth))
        rng = Random(self.seed)
        self._a = tuple(rng.randrange(1, _PRIME) for _ in range(self.depth))
        self._b = tuple(rng.randrange(0, _PRIME) for _ in range(self.depth))

    # ------------------------------------------------------------------
    def _indexes(self, key: int) -> list[int]:
        width = self.width
        return [
            row * width + ((a * key + b) % _PRIME) % width
            for row, (a, b) in enumerate(zip(self._a, self._b))
        ]

    def add(self, key: int, count: int = 1) -> int:
        """Record ``count`` occurrences of ``key``; returns the new estimate."""
        if count < 1:
            raise InvalidParameterError(f"count must be >= 1, got {count}")
        cells = self._cells
        idx = self._indexes(key)
        self.total += count
        if self.conservative:
            floor = min(cells[i] for i in idx) + count
            for i in idx:
                if cells[i] < floor:
                    cells[i] = floor
            return floor
        for i in idx:
            cells[i] += count
        return min(cells[i] for i in idx)

    def estimate(self, key: int) -> int:
        """Point estimate; ``>= true count`` always, ``<= true + eps*N`` w.h.p."""
        cells = self._cells
        return min(cells[i] for i in self._indexes(key))

    def error_bound(self) -> int:
        """The additive overestimate bound ``ceil(eps * N)`` at the current N."""
        return math.ceil(self.epsilon * self.total)

    def memory_bytes(self) -> int:
        """Bytes held by the counter table (the dominant, fixed cost)."""
        return 8 * self.width * self.depth

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to a platform-independent byte string."""
        cells = self._cells
        if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
            cells = array("Q", cells)
            cells.byteswap()
        return (
            _HEADER.pack(
                _MAGIC,
                self.epsilon,
                self.delta,
                self.seed,
                self.width,
                self.depth,
                self.total,
                int(self.conservative),
            )
            + cells.tobytes()
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CountMinSketch":
        """Restore a sketch serialized by :meth:`to_bytes` (byte-identical)."""
        if len(blob) < _HEADER.size or blob[:4] != _MAGIC:
            raise CheckpointError("not a serialized CountMinSketch")
        magic, epsilon, delta, seed, width, depth, total, conservative = _HEADER.unpack_from(blob)
        sketch = cls(epsilon, delta, seed=seed, conservative=bool(conservative))
        if (sketch.width, sketch.depth) != (width, depth):
            raise CheckpointError(
                f"sketch shape mismatch: header says {width}x{depth}, "
                f"parameters derive {sketch.width}x{sketch.depth}"
            )
        body = blob[_HEADER.size :]
        if len(body) != 8 * width * depth:
            raise CheckpointError(
                f"sketch body is {len(body)} bytes, expected {8 * width * depth}"
            )
        cells = array("Q")
        cells.frombytes(body)
        if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
            cells.byteswap()
        sketch._cells = cells
        sketch.total = total
        return sketch

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CountMinSketch) and self.to_bytes() == other.to_bytes()

    def __repr__(self) -> str:
        return (
            f"CountMinSketch(eps={self.epsilon}, delta={self.delta}, "
            f"{self.width}x{self.depth}, total={self.total})"
        )
