"""Stream ingestion driver: one pass, periodic reports, durable snapshots.

:class:`StreamIngestor` pulls transactions from any iterator (the
unseekable-stream readers in :mod:`repro.data.io`, a socket feed, a
generator) into a summary — either a whole-stream
:class:`~repro.stream.summary.StreamSummary` or a
:class:`~repro.stream.window.SlidingWindowSketch` — and on a fixed
cadence invokes a report callback and/or persists a snapshot through a
CRC-framed :class:`~repro.robustness.checkpoint.CheckpointStore` (two
generations: a crash mid-save falls back to the previous good sketch).

Snapshots carry a one-byte kind tag so :func:`load_sketch` restores the
right class without the caller remembering which one it saved.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.errors import CheckpointError, InvalidParameterError
from repro.robustness.checkpoint import CheckpointStore
from repro.stream.summary import StreamSummary
from repro.stream.window import SlidingWindowSketch

__all__ = [
    "StreamIngestor",
    "sketch_to_blob",
    "sketch_from_blob",
    "save_sketch",
    "load_sketch",
    "sketch_digest",
    "SKETCH_NODE",
    "SKETCH_KEY",
]

#: CheckpointStore coordinates used for sketch snapshots: the stream tier
#: is a single logical node, and one key holds the whole summary state.
SKETCH_NODE = 0
SKETCH_KEY = "stream-sketch"

_KIND_SUMMARY = b"S"
_KIND_WINDOW = b"W"


def sketch_to_blob(sketch: StreamSummary | SlidingWindowSketch) -> bytes:
    """Serialize a sketch to its tagged snapshot bytes (kind + payload).

    This is the blob :func:`save_sketch` persists and :func:`sketch_digest`
    hashes; the serve tier's warm-restart snapshots
    (:mod:`repro.serve.snapshot`) reuse it so a sketch snapshot written by
    either tier restores in the other.
    """
    if isinstance(sketch, StreamSummary):
        return _KIND_SUMMARY + sketch.to_bytes()
    if isinstance(sketch, SlidingWindowSketch):
        return _KIND_WINDOW + _window_to_bytes(sketch)
    raise InvalidParameterError(
        f"cannot snapshot a {type(sketch).__name__}; expected StreamSummary "
        f"or SlidingWindowSketch"
    )


def sketch_from_blob(blob: bytes) -> StreamSummary | SlidingWindowSketch:
    """Inverse of :func:`sketch_to_blob` (raises CheckpointError on damage)."""
    if not blob:
        raise CheckpointError("empty sketch snapshot")
    kind, payload = blob[:1], blob[1:]
    if kind == _KIND_SUMMARY:
        return StreamSummary.from_bytes(payload)
    if kind == _KIND_WINDOW:
        return _window_from_bytes(payload)
    raise CheckpointError(f"unknown sketch snapshot kind {kind!r}")


def save_sketch(
    store: CheckpointStore,
    sketch: StreamSummary | SlidingWindowSketch,
    *,
    key: str = SKETCH_KEY,
) -> int:
    """Persist a sketch snapshot; returns the snapshot size in bytes."""
    blob = sketch_to_blob(sketch)
    store.save(SKETCH_NODE, key, blob)
    return len(blob)


def load_sketch(
    store: CheckpointStore, *, key: str = SKETCH_KEY
) -> StreamSummary | SlidingWindowSketch:
    """Restore the sketch saved under ``key`` (raises on absent/corrupt)."""
    return sketch_from_blob(store.load(SKETCH_NODE, key))


def sketch_digest(sketch: StreamSummary | SlidingWindowSketch) -> str:
    """SHA-256 over the sketch's serialized state (incl. the kind tag).

    Two sketches with equal digests answer every query identically —
    the property the snapshot/restore smoke asserts.
    """
    import hashlib

    return hashlib.sha256(sketch_to_blob(sketch)).hexdigest()


def _window_to_bytes(sketch: SlidingWindowSketch) -> bytes:
    """Serialize a sliding-window sketch: header + generation summaries.

    Generations share one registry in memory; on disk each generation
    section embeds it (the registry is small — the distinct-item list)
    and restore re-unifies them onto the first generation's registry.
    """
    import json
    import struct

    header = json.dumps(
        {
            "window": sketch.window,
            "buckets": sketch.buckets,
            "epsilon": sketch.epsilon,
            "delta": sketch.delta,
            "capacity": sketch.capacity,
            "seed": sketch.seed,
            "track_pairs": sketch.track_pairs,
            "exact_tail": sketch.exact_tail,
            "pushed": sketch.n_seen,
            "gen_counter": sketch._gen_counter,
            "gen_seeds": [g.seed for g in sketch._generations],
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    sections = [header] + [g.to_bytes() for g in sketch._generations]
    if sketch._tail is not None:
        tail_doc = json.dumps(
            [sorted(t, key=repr) for t in sketch._tail.contents()],
            separators=(",", ":"),
        ).encode("utf-8")
        sections.append(tail_doc)
    return b"".join(struct.pack("<I", len(s)) + s for s in sections)


def _window_from_bytes(blob: bytes) -> SlidingWindowSketch:
    import json
    import struct

    sections: list[bytes] = []
    pos = 0
    size = struct.calcsize("<I")
    while pos < len(blob):
        if pos + size > len(blob):
            raise CheckpointError("truncated sliding-window snapshot")
        (length,) = struct.unpack_from("<I", blob, pos)
        pos += size
        if pos + length > len(blob):
            raise CheckpointError("truncated sliding-window snapshot")
        sections.append(blob[pos : pos + length])
        pos += length
    if not sections:
        raise CheckpointError("empty sliding-window snapshot")
    try:
        header = json.loads(sections[0].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"damaged sliding-window header: {exc}") from exc
    sketch = SlidingWindowSketch(
        header["window"],
        buckets=header["buckets"],
        epsilon=header["epsilon"],
        delta=header["delta"],
        capacity=header["capacity"],
        seed=header["seed"],
        track_pairs=header["track_pairs"],
        exact_tail=header["exact_tail"],
    )
    n_gens = len(header["gen_seeds"])
    expected = 1 + n_gens + (1 if header["exact_tail"] else 0)
    if len(sections) != expected:
        raise CheckpointError(
            f"sliding-window snapshot has {len(sections)} sections, "
            f"expected {expected}"
        )
    generations = [StreamSummary.from_bytes(s) for s in sections[1 : 1 + n_gens]]
    if generations:
        # re-unify the shared registry: all generations saw the same
        # arrival order, so the largest registry is a superset
        registry = max((g.registry for g in generations), key=len)
        for g in generations:
            g.registry = registry
        sketch.registry = registry
    sketch._generations.extend(generations)
    sketch._pushed = header["pushed"]
    sketch._gen_counter = header["gen_counter"]
    if header["exact_tail"]:
        try:
            tail_rows = json.loads(sections[-1].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"damaged exact-tail section: {exc}") from exc
        for row in tail_rows:
            sketch._tail.push(row)
    return sketch


class StreamIngestor:
    """Drive transactions from an iterator into a sketch, with cadence hooks.

    Parameters
    ----------
    sketch:
        A :class:`StreamSummary` or :class:`SlidingWindowSketch`.
    report_every:
        Call ``on_report(sketch, n_ingested)`` every that many
        transactions (0 disables).
    on_report:
        The report callback; exceptions propagate (a broken reporter is
        a caller bug, not an ingest condition to swallow).
    checkpoint:
        A :class:`CheckpointStore` to snapshot into at the report
        cadence (and once at the end of :meth:`run`).
    checkpoint_key:
        Key within the store (default :data:`SKETCH_KEY`).
    """

    def __init__(
        self,
        sketch: StreamSummary | SlidingWindowSketch,
        *,
        report_every: int = 0,
        on_report: Callable[[StreamSummary | SlidingWindowSketch, int], None] | None = None,
        checkpoint: CheckpointStore | None = None,
        checkpoint_key: str = SKETCH_KEY,
    ):
        if report_every < 0:
            raise InvalidParameterError(
                f"report_every must be >= 0, got {report_every}"
            )
        self.sketch = sketch
        self.report_every = report_every
        self.on_report = on_report
        self.checkpoint = checkpoint
        self.checkpoint_key = checkpoint_key
        self.n_ingested = 0
        self.n_reports = 0
        self.n_snapshots = 0

    def _tick(self) -> None:
        self.n_reports += 1
        if self.on_report is not None:
            self.on_report(self.sketch, self.n_ingested)
        self.snapshot_now()

    def snapshot_now(self) -> bool:
        """Persist a snapshot immediately (out-of-cadence hook).

        The serving worker calls this from its SIGHUP handler so an
        operator can force a durable sketch generation between cadence
        ticks.  Returns True when a snapshot was written (False when no
        checkpoint store is configured).
        """
        if self.checkpoint is None:
            return False
        save_sketch(self.checkpoint, self.sketch, key=self.checkpoint_key)
        self.n_snapshots += 1
        return True

    def feed(self, transactions: Iterable[Iterable]) -> int:
        """Ingest transactions (no final snapshot); returns the count fed."""
        fed = 0
        for t in transactions:
            self.sketch.push(t)
            self.n_ingested += 1
            fed += 1
            if self.report_every and self.n_ingested % self.report_every == 0:
                self._tick()
        return fed

    def run(self, transactions: Iterator[Iterable]) -> int:
        """Ingest to exhaustion, then snapshot once more (if configured)."""
        fed = self.feed(transactions)
        if self.checkpoint is not None:
            save_sketch(self.checkpoint, self.sketch, key=self.checkpoint_key)
            self.n_snapshots += 1
        return fed

    def __repr__(self) -> str:
        return (
            f"StreamIngestor(ingested={self.n_ingested}, reports={self.n_reports}, "
            f"snapshots={self.n_snapshots})"
        )
